// Event-driven timing simulation with per-gate transport delays: expanded
// netlists must settle to the levelized evaluator's values, take time
// proportional to logic depth, and exhibit real hazards (glitches).
#include "gate/gate_module.hpp"

#include <gtest/gtest.h>

#include "core/sim_controller.hpp"
#include "core/wiring.hpp"
#include "gate/netlist_io.hpp"
#include "gate/generators.hpp"
#include "rtl/modules.hpp"

namespace vcad::gate {
namespace {

void injectWord(SimulationController& sim, const std::vector<Connector*>& pis,
                const Word& w) {
  for (int i = 0; i < w.width(); ++i) {
    sim.inject(*pis[static_cast<size_t>(i)], Word::fromLogic(w.bit(i)));
  }
}

Word readOutputs(const std::vector<Connector*>& pos, std::uint32_t id) {
  Word w(static_cast<int>(pos.size()));
  for (size_t i = 0; i < pos.size(); ++i) {
    w.setBit(static_cast<int>(i), pos[i]->value(id).scalar());
  }
  return w;
}

TEST(GateModule, SingleGateDelay) {
  Circuit top("top");
  auto& a = top.makeBit();
  auto& b = top.makeBit();
  auto& o = top.makeBit();
  top.make<GateModule>("and", GateType::And, std::vector<Connector*>{&a, &b},
                       o, 7);
  SimulationController sim(top);
  sim.inject(a, Word::fromLogic(Logic::L1));
  sim.inject(b, Word::fromLogic(Logic::L1));
  sim.start();
  EXPECT_EQ(sim.scheduler().now(), 7u);
  EXPECT_EQ(o.value(sim.scheduler().id()).scalar(), Logic::L1);
}

TEST(GateModule, InverterChainSettlesAtDepthTimesDelay) {
  const int depth = 10;
  Netlist nl;
  NetId cur = nl.addInput("a");
  for (int i = 0; i < depth; ++i) cur = nl.addGate(GateType::Not, {cur});
  nl.markOutput(cur);

  Circuit top("top");
  auto exp = expandNetlist(top, nl, /*delay=*/3);
  SimulationController sim(top);
  sim.inject(*exp.inputs[0], Word::fromLogic(Logic::L0));
  sim.start();
  EXPECT_EQ(sim.scheduler().now(),
            static_cast<SimTime>(depth) * 3);
  EXPECT_EQ(exp.outputs[0]->value(sim.scheduler().id()).scalar(), Logic::L0);
}

TEST(GateModule, XorHazardProducesGlitch) {
  // out = XOR(a, BUF(a)): statically always 0, but a transition on `a`
  // reaches the XOR's two pins at different times -> a transient 1 pulse.
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addGate(GateType::Buf, {a}, "b");
  nl.markOutput(nl.addGate(GateType::Xor, {a, b}, "o"));

  Circuit top("top");
  auto exp = expandNetlist(top, nl, 2);
  auto& probeConn = top.makeBit();
  top.make<Buffer>("tap", *exp.outputs[0], probeConn);
  auto& probe = top.make<rtl::PrimaryOutput>("probe", probeConn);

  SimulationController sim(top);
  sim.inject(*exp.inputs[0], Word::fromLogic(Logic::L0));
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};
  const auto settled = probe.sampleCount(ctx);
  EXPECT_EQ(probe.last(ctx).scalar(), Logic::L0);

  // Rising edge on a: XOR sees the new a immediately but the buffered copy
  // two ticks later -> glitch to 1, then back to 0.
  sim.inject(*exp.inputs[0], Word::fromLogic(Logic::L1));
  sim.start();
  const auto& hist = probe.history(ctx);
  ASSERT_GE(hist.size(), settled + 2);
  EXPECT_EQ(hist[settled].value.scalar(), Logic::L1);      // the glitch
  EXPECT_EQ(hist.back().value.scalar(), Logic::L0);        // settles back
  EXPECT_LT(hist[settled].time, hist.back().time);
}

TEST(GateModule, NoChangeNoEvents) {
  Circuit top("top");
  auto& a = top.makeBit();
  auto& b = top.makeBit();
  auto& o = top.makeBit();
  top.make<GateModule>("or", GateType::Or, std::vector<Connector*>{&a, &b}, o,
                       1);
  SimulationController sim(top);
  sim.inject(a, Word::fromLogic(Logic::L1));
  sim.start();
  const auto dispatched = sim.scheduler().dispatched();
  // Second input: OR output stays 1, so the gate must not emit again.
  sim.inject(b, Word::fromLogic(Logic::L1));
  sim.start();
  EXPECT_EQ(sim.scheduler().dispatched(), dispatched + 1);  // only the inject
}

TEST(GateModule, ArityChecked) {
  Circuit top("top");
  auto& a = top.makeBit();
  auto& o = top.makeBit();
  EXPECT_THROW(top.make<GateModule>("bad", GateType::Not,
                                    std::vector<Connector*>{&a, &a}, o, 1),
               std::invalid_argument);
}

class ExpandedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ExpandedEquivalence, SteadyStateMatchesLevelizedEvaluator) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const int nIn = 3 + static_cast<int>(rng.below(5));
  const Netlist nl = makeRandomNetlist(
      rng, nIn, 10 + static_cast<int>(rng.below(40)),
      1 + static_cast<int>(rng.below(3)));
  NetlistEvaluator eval(nl);

  Circuit top("top");
  auto exp = expandNetlist(top, nl, 1 + static_cast<SimTime>(rng.below(3)));
  SimulationController sim(top);
  for (int step = 0; step < 12; ++step) {
    const Word in = Word::fromUint(nIn, rng.next());
    injectWord(sim, exp.inputs, in);
    sim.start();  // run to quiescence
    EXPECT_EQ(readOutputs(exp.outputs, sim.scheduler().id()),
              eval.evalOutputs(in))
        << "seed=" << GetParam() << " step=" << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpandedEquivalence, ::testing::Range(1, 11));

TEST(GateModule, ExpandedC17MatchesTruth) {
  const Netlist c17 = makeC17();
  NetlistEvaluator eval(c17);
  Circuit top("top");
  auto exp = expandNetlist(top, c17, 2);
  SimulationController sim(top);
  for (unsigned v = 0; v < 32; ++v) {
    const Word in = Word::fromUint(5, v);
    injectWord(sim, exp.inputs, in);
    sim.start();
    EXPECT_EQ(readOutputs(exp.outputs, sim.scheduler().id()),
              eval.evalOutputs(in))
        << v;
  }
}

}  // namespace
}  // namespace vcad::gate
