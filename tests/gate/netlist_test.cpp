#include "gate/netlist.hpp"

#include <gtest/gtest.h>

namespace vcad::gate {
namespace {

TEST(Netlist, BuildAndQuery) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId o = nl.addGate(GateType::And, {a, b}, "o");
  nl.markOutput(o);
  EXPECT_EQ(nl.inputCount(), 2);
  EXPECT_EQ(nl.outputCount(), 1);
  EXPECT_EQ(nl.gateCount(), 1);
  EXPECT_EQ(nl.netCount(), 3);
  EXPECT_TRUE(nl.isPrimaryInput(a));
  EXPECT_FALSE(nl.isPrimaryInput(o));
  EXPECT_TRUE(nl.isPrimaryOutput(o));
  EXPECT_EQ(nl.driverOf(a), -1);
  EXPECT_EQ(nl.driverOf(o), 0);
  EXPECT_EQ(nl.findNet("b"), b);
  EXPECT_EQ(nl.findNet("zz"), kNoNet);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, AutoNamedNets) {
  Netlist nl;
  const NetId n = nl.addNet();
  EXPECT_EQ(nl.netName(n), "n0");
}

TEST(Netlist, DoubleDriverRejected) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId o = nl.addGate(GateType::Not, {a});
  EXPECT_THROW(nl.addGateDriving(GateType::Buf, {a}, o), std::logic_error);
}

TEST(Netlist, DrivingPrimaryInputRejected) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  EXPECT_THROW(nl.addGateDriving(GateType::Not, {b}, a), std::logic_error);
}

TEST(Netlist, UndrivenNetFailsValidate) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId dangling = nl.addNet("dangling");
  const NetId o = nl.addGate(GateType::And, {a, dangling});
  nl.markOutput(o);
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(Netlist, ArityChecked) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  EXPECT_THROW(nl.addGate(GateType::Not, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.addGate(GateType::And, {a}), std::invalid_argument);
  EXPECT_THROW(nl.addGate(GateType::Xor, {a, a, a}), std::invalid_argument);
}

TEST(Netlist, DoubleOutputMarkRejected) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId o = nl.addGate(GateType::Not, {a});
  nl.markOutput(o);
  EXPECT_THROW(nl.markOutput(o), std::logic_error);
}

TEST(Netlist, FanoutCountsReadersAndOutputs) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId x = nl.addGate(GateType::And, {a, b}, "x");
  const NetId y = nl.addGate(GateType::Not, {x}, "y");
  const NetId z = nl.addGate(GateType::Buf, {x}, "z");
  nl.markOutput(x);
  nl.markOutput(y);
  nl.markOutput(z);
  EXPECT_EQ(nl.fanoutOf(x), 3);  // two readers + output marking
  EXPECT_EQ(nl.fanoutOf(a), 1);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId x = nl.addGate(GateType::And, {a, b});
  const NetId y = nl.addGate(GateType::Not, {x});
  nl.markOutput(y);
  const auto order = nl.topoOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_LT(std::find(order.begin(), order.end(), nl.driverOf(x)),
            std::find(order.begin(), order.end(), nl.driverOf(y)));
}

TEST(Netlist, LevelsIncreaseMonotonically) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  NetId cur = a;
  for (int i = 0; i < 5; ++i) cur = nl.addGate(GateType::Not, {cur});
  nl.markOutput(cur);
  const auto lvl = nl.levels();
  EXPECT_EQ(lvl[static_cast<size_t>(a)], 0);
  EXPECT_EQ(lvl[static_cast<size_t>(cur)], 5);
}

TEST(NetlistEvaluator, BasicGates) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.markOutput(nl.addGate(GateType::And, {a, b}));
  nl.markOutput(nl.addGate(GateType::Or, {a, b}));
  nl.markOutput(nl.addGate(GateType::Xor, {a, b}));
  nl.markOutput(nl.addGate(GateType::Nand, {a, b}));
  NetlistEvaluator ev(nl);
  for (unsigned v = 0; v < 4; ++v) {
    const bool av = (v & 1) != 0;
    const bool bv = (v & 2) != 0;
    const Word out = ev.evalOutputs(Word::fromUint(2, v));
    EXPECT_EQ(out.bit(0), fromBool(av && bv));
    EXPECT_EQ(out.bit(1), fromBool(av || bv));
    EXPECT_EQ(out.bit(2), fromBool(av != bv));
    EXPECT_EQ(out.bit(3), fromBool(!(av && bv)));
  }
}

TEST(NetlistEvaluator, XInputsPropagate) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.markOutput(nl.addGate(GateType::And, {a, b}));
  NetlistEvaluator ev(nl);
  Word in(2);
  in.setBit(0, Logic::L0);  // controlling 0
  EXPECT_EQ(ev.evalOutputs(in).bit(0), Logic::L0);
  in.setBit(0, Logic::L1);
  EXPECT_EQ(ev.evalOutputs(in).bit(0), Logic::X);
}

TEST(NetlistEvaluator, StuckFaultOnInternalNet) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId x = nl.addGate(GateType::Not, {a}, "x");
  const NetId o = nl.addGate(GateType::Not, {x}, "o");
  nl.markOutput(o);
  NetlistEvaluator ev(nl);
  EXPECT_EQ(ev.evalOutputs(Word::fromUint(1, 1)).bit(0), Logic::L1);
  EXPECT_EQ(ev.evalOutputs(Word::fromUint(1, 1), StuckFault{x, Logic::L1}).bit(0),
            Logic::L0);
}

TEST(NetlistEvaluator, StuckFaultOnPrimaryInput) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.markOutput(nl.addGate(GateType::And, {a, b}));
  NetlistEvaluator ev(nl);
  EXPECT_EQ(
      ev.evalOutputs(Word::fromUint(2, 0b11), StuckFault{a, Logic::L0}).bit(0),
      Logic::L0);
}

TEST(NetlistEvaluator, InputWidthChecked) {
  Netlist nl;
  nl.addInput("a");
  NetlistEvaluator ev(nl);
  EXPECT_THROW(ev.evaluate(Word::fromUint(2, 0)), std::invalid_argument);
}

TEST(NetlistEvaluator, ConstGates) {
  Netlist nl;
  nl.markOutput(nl.addGate(GateType::Const0, {}));
  nl.markOutput(nl.addGate(GateType::Const1, {}));
  NetlistEvaluator ev(nl);
  const Word out = ev.evalOutputs(Word(0));
  EXPECT_EQ(out.bit(0), Logic::L0);
  EXPECT_EQ(out.bit(1), Logic::L1);
}

}  // namespace
}  // namespace vcad::gate
