#include "gate/netlist_module.hpp"

#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/sim_controller.hpp"
#include "core/wiring.hpp"
#include "gate/generators.hpp"

namespace vcad::gate {
namespace {

TEST(NetlistModule, WordPortsEvaluateMultiplier) {
  const int w = 8;
  auto nl = std::make_shared<Netlist>(makeArrayMultiplier(w));
  Circuit top("top");
  auto& ca = top.makeWord(w, "A");
  auto& cb = top.makeWord(w, "B");
  auto& co = top.makeWord(2 * w, "O");
  top.make<NetlistModule>(
      "mult", nl,
      std::vector<NetlistModule::PortGroup>{{"a", &ca, 0, w}, {"b", &cb, w, w}},
      std::vector<NetlistModule::PortGroup>{{"p", &co, 0, 2 * w}});

  SimulationController sim(top);
  sim.inject(ca, Word::fromUint(w, 23));
  sim.inject(cb, Word::fromUint(w, 19));
  sim.start();
  EXPECT_EQ(co.value(sim.scheduler().id()).toUint(), 23u * 19u);
}

TEST(NetlistModule, BitLevelFactoryWiresPinOrder) {
  auto nl = std::make_shared<Netlist>(makeHalfAdder());
  Circuit top("top");
  auto& a = top.makeBit("a");
  auto& b = top.makeBit("b");
  auto& sum = top.makeBit("sum");
  auto& carry = top.makeBit("carry");
  top.adopt(makeBitLevelModule("ha", nl, {&a, &b}, {&sum, &carry}));

  SimulationController sim(top);
  sim.inject(a, Word::fromLogic(Logic::L1));
  sim.inject(b, Word::fromLogic(Logic::L1));
  sim.start();
  const auto id = sim.scheduler().id();
  EXPECT_EQ(sum.value(id).scalar(), Logic::L0);
  EXPECT_EQ(carry.value(id).scalar(), Logic::L1);
}

TEST(NetlistModule, PartialInputsYieldPessimisticX) {
  auto nl = std::make_shared<Netlist>(makeHalfAdder());
  Circuit top("top");
  auto& a = top.makeBit();
  auto& b = top.makeBit();
  auto& sum = top.makeBit();
  auto& carry = top.makeBit();
  top.adopt(makeBitLevelModule("ha", nl, {&a, &b}, {&sum, &carry}));
  SimulationController sim(top);
  sim.inject(a, Word::fromLogic(Logic::L1));  // b still unknown
  sim.start();
  const auto id = sim.scheduler().id();
  EXPECT_EQ(sum.value(id).scalar(), Logic::X);
  EXPECT_EQ(carry.value(id).scalar(), Logic::X);
}

TEST(NetlistModule, UnchangedOutputsSuppressed) {
  auto nl = std::make_shared<Netlist>(makeHalfAdder());
  Circuit top("top");
  auto& a = top.makeBit();
  auto& b = top.makeBit();
  auto& sum = top.makeBit();
  auto& carry = top.makeBit();
  auto& mod = static_cast<NetlistModule&>(
      top.adopt(makeBitLevelModule("ha", nl, {&a, &b}, {&sum, &carry})));
  // Downstream event counter.
  struct Counter : Module {
    Counter(std::string n, Connector& in) : Module(std::move(n)) {
      addInput("in", in);
    }
    void processInputEvent(const SignalToken&, SimContext&) override {
      ++events;
    }
    int events = 0;
  };
  auto& tapConn = top.makeBit();
  top.make<Buffer>("tapBuf", sum, tapConn);
  auto& counter = top.make<Counter>("cnt", tapConn);

  SimulationController sim(top);
  sim.inject(a, Word::fromLogic(Logic::L0));
  sim.inject(b, Word::fromLogic(Logic::L0));
  sim.start();
  const int after1 = counter.events;
  // Re-inject the same values: netlist re-evaluates but must not re-emit.
  sim.inject(a, Word::fromLogic(Logic::L0));
  sim.start();
  EXPECT_EQ(counter.events, after1);
  EXPECT_GT(mod.evaluations({sim.scheduler(), nullptr}), 0u);
}

TEST(NetlistModule, ActivityCountersAccumulate) {
  auto nl = std::make_shared<Netlist>(makeArrayMultiplier(4));
  Circuit top("top");
  auto& ca = top.makeWord(4);
  auto& cb = top.makeWord(4);
  auto& co = top.makeWord(8);
  auto& mod = top.make<NetlistModule>(
      "m", nl,
      std::vector<NetlistModule::PortGroup>{{"a", &ca, 0, 4}, {"b", &cb, 4, 4}},
      std::vector<NetlistModule::PortGroup>{{"p", &co, 0, 8}});
  mod.setRecordPatterns(true);

  SimulationController sim(top);
  SimContext ctx{sim.scheduler(), nullptr};
  sim.inject(ca, Word::fromUint(4, 0));
  sim.inject(cb, Word::fromUint(4, 0));
  sim.start();
  sim.inject(ca, Word::fromUint(4, 0xF));
  sim.inject(cb, Word::fromUint(4, 0xF));
  sim.start();
  EXPECT_GT(mod.netToggles(ctx), 0u);
  EXPECT_GT(mod.switchingEnergyPj(ctx), 0.0);
  EXPECT_GE(mod.patternHistory(ctx).size(), 2u);
  mod.clearPatternHistory(ctx);
  EXPECT_TRUE(mod.patternHistory(ctx).empty());
}

TEST(NetlistModule, GroupCoverageValidated) {
  auto nl = std::make_shared<Netlist>(makeHalfAdder());
  Circuit top("top");
  auto& a = top.makeBit();
  auto& sum = top.makeBit();
  auto& carry = top.makeBit();
  // Missing one input group.
  EXPECT_THROW(
      top.make<NetlistModule>(
          "bad", nl, std::vector<NetlistModule::PortGroup>{{"a", &a, 0, 1}},
          std::vector<NetlistModule::PortGroup>{{"s", &sum, 0, 1},
                                                {"c", &carry, 1, 1}}),
      std::invalid_argument);
}

TEST(NetlistModule, ConnectorCountMismatchRejected) {
  auto nl = std::make_shared<Netlist>(makeHalfAdder());
  Circuit top("top");
  auto& a = top.makeBit();
  auto& s = top.makeBit();
  EXPECT_THROW(makeBitLevelModule("bad", nl, {&a}, {&s}),
               std::invalid_argument);
}

TEST(NetlistModule, TwoSchedulersSeeIndependentActivity) {
  auto nl = std::make_shared<Netlist>(makeHalfAdder());
  Circuit top("top");
  auto& a = top.makeBit();
  auto& b = top.makeBit();
  auto& sum = top.makeBit();
  auto& carry = top.makeBit();
  auto& mod = static_cast<NetlistModule&>(
      top.adopt(makeBitLevelModule("ha", nl, {&a, &b}, {&sum, &carry})));

  SimulationController s1(top), s2(top);
  s1.inject(a, Word::fromLogic(Logic::L1));
  s1.inject(b, Word::fromLogic(Logic::L0));
  s1.start();
  s2.inject(a, Word::fromLogic(Logic::L0));
  s2.inject(b, Word::fromLogic(Logic::L0));
  s2.start();
  EXPECT_EQ(sum.value(s1.scheduler().id()).scalar(), Logic::L1);
  EXPECT_EQ(sum.value(s2.scheduler().id()).scalar(), Logic::L0);
  // Both stimuli of each run arrive in the same instant and are coalesced
  // into a single netlist evaluation per scheduler.
  EXPECT_EQ(mod.evaluations({s1.scheduler(), nullptr}), 1u);
  EXPECT_EQ(mod.evaluations({s2.scheduler(), nullptr}), 1u);
}

}  // namespace
}  // namespace vcad::gate
