#include "ip/negotiation.hpp"

#include <gtest/gtest.h>

#include "gate/generators.hpp"
#include "ip/remote_component.hpp"

namespace vcad::ip {
namespace {

IpComponentSpec fullSpec() {
  IpComponentSpec spec;
  spec.name = "MULT";
  spec.minWidth = 2;
  spec.maxWidth = 16;
  spec.power = ModelLevel::Dynamic;
  spec.timing = ModelLevel::Dynamic;
  spec.area = ModelLevel::Static;
  spec.hasLinearPowerModel = true;
  spec.fees.perPowerPatternCents = 0.1;
  spec.fees.perTimingQueryCents = 0.02;
  return spec;
}

TEST(Negotiation, OffersFollowModelLevels) {
  const auto spec = fullSpec();
  EXPECT_EQ(offersOf(spec, ParamKind::AvgPower).size(), 3u);
  EXPECT_EQ(offersOf(spec, ParamKind::Delay).size(), 2u);
  EXPECT_EQ(offersOf(spec, ParamKind::Area).size(), 1u);  // static only
  EXPECT_TRUE(offersOf(spec, ParamKind::Testability).empty());

  IpComponentSpec bare;
  bare.power = ModelLevel::None;
  EXPECT_TRUE(offersOf(bare, ParamKind::AvgPower).empty());
}

TEST(Negotiation, GenerousBudgetGetsBestAccuracy) {
  const auto res = resolveNegotiation(fullSpec(), ParamKind::AvgPower,
                                      /*maxCost=*/10.0, /*maxError=*/100.0);
  EXPECT_EQ(res.outcome, NegotiationResult::Outcome::Accepted);
  EXPECT_EQ(res.offer.name, "gate-level-toggle");
}

TEST(Negotiation, ZeroBudgetGetsBestFreeEstimator) {
  const auto res = resolveNegotiation(fullSpec(), ParamKind::AvgPower, 0.0,
                                      100.0);
  EXPECT_EQ(res.outcome, NegotiationResult::Outcome::Accepted);
  EXPECT_EQ(res.offer.name, "linear-regression");
}

TEST(Negotiation, TightAccuracyWithZeroBudgetYieldsCounterOffer) {
  // 15% accuracy requires the gate-level model, which costs money.
  const auto res = resolveNegotiation(fullSpec(), ParamKind::AvgPower, 0.0,
                                      15.0);
  EXPECT_EQ(res.outcome, NegotiationResult::Outcome::CounterOffer);
  EXPECT_EQ(res.offer.name, "gate-level-toggle");
  EXPECT_GT(res.offer.costPerUseCents, 0.0);
}

TEST(Negotiation, ImpossibleAccuracyIsUnavailable) {
  const auto res = resolveNegotiation(fullSpec(), ParamKind::AvgPower, 100.0,
                                      1.0);
  EXPECT_EQ(res.outcome, NegotiationResult::Outcome::Unavailable);
}

TEST(Negotiation, OfferSerializationRoundTrip) {
  EstimatorOffer o{"gate-level-toggle", 10.0, 0.1, true};
  net::ByteBuffer buf;
  o.serialize(buf);
  const auto back = EstimatorOffer::deserialize(buf);
  EXPECT_EQ(back.name, o.name);
  EXPECT_DOUBLE_EQ(back.errorPct, o.errorPct);
  EXPECT_DOUBLE_EQ(back.costPerUseCents, o.costPerUseCents);
  EXPECT_EQ(back.remote, o.remote);
}

TEST(Negotiation, EndToEndOverRmi) {
  LogSink log;
  ProviderServer server("p", &log);
  server.registerComponent(
      fullSpec(),
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeArrayMultiplier(static_cast<int>(w)));
      },
      nullptr);
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal(), &log);
  ProviderHandle provider(channel);
  rmi::Args args;
  args.addU64(8);
  auto resp = provider.call(rmi::MethodId::Instantiate, 0, std::move(args),
                            "MULT");
  ASSERT_TRUE(resp.ok());
  const auto id = resp.payload.readU64();

  // Round 1: free and loose -> linear regression.
  auto r1 = negotiateEstimator(provider, id, ParamKind::AvgPower, 0.0, 100.0);
  EXPECT_EQ(r1.outcome, NegotiationResult::Outcome::Accepted);
  EXPECT_EQ(r1.offer.name, "linear-regression");

  // Round 2: demand 15% error on a zero budget -> counter-offer.
  auto r2 = negotiateEstimator(provider, id, ParamKind::AvgPower, 0.0, 15.0);
  EXPECT_EQ(r2.outcome, NegotiationResult::Outcome::CounterOffer);
  EXPECT_EQ(r2.offer.name, "gate-level-toggle");

  // Round 3: the client accepts the counter-offer's fee.
  auto r3 = negotiateEstimator(provider, id, ParamKind::AvgPower,
                               r2.offer.costPerUseCents, 15.0);
  EXPECT_EQ(r3.outcome, NegotiationResult::Outcome::Accepted);
  EXPECT_EQ(r3.offer.name, "gate-level-toggle");

  // Impossible request -> unavailable.
  auto r4 = negotiateEstimator(provider, id, ParamKind::AvgPower, 100.0, 1.0);
  EXPECT_EQ(r4.outcome, NegotiationResult::Outcome::Unavailable);
}

}  // namespace
}  // namespace vcad::ip
