// Watermarking baseline (related work): proves provenance, preserves
// function exactly, and — unlike virtual simulation — hides nothing: the
// watermark can even be stripped, leaving the adversary with the full
// functional IP.
#include "ip/watermark.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "gate/generators.hpp"

namespace vcad::ip {
namespace {

using gate::Netlist;
using gate::NetlistEvaluator;

std::vector<bool> signatureBits(std::uint64_t value, int bits) {
  std::vector<bool> s;
  for (int i = 0; i < bits; ++i) s.push_back(((value >> i) & 1) != 0);
  return s;
}

void expectSameFunction(const Netlist& a, const Netlist& b,
                        std::uint64_t seed) {
  ASSERT_EQ(a.inputCount(), b.inputCount());
  ASSERT_EQ(a.outputCount(), b.outputCount());
  NetlistEvaluator ea(a), eb(b);
  Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    const Word in = Word::fromUint(a.inputCount(), rng.next());
    EXPECT_EQ(ea.evalOutputs(in), eb.evalOutputs(in));
  }
}

TEST(Watermark, PreservesFunctionOnMultiplier) {
  const Netlist orig = gate::makeArrayMultiplier(4);
  const auto sig = signatureBits(0xDAC99, 16);
  const Netlist marked = embedWatermark(orig, {42}, sig);
  expectSameFunction(orig, marked, 1);
  EXPECT_EQ(marked.gateCount(), orig.gateCount() + 2 * 16);
}

TEST(Watermark, ExtractionRecoversSignature) {
  const Netlist orig = gate::makeArrayMultiplier(4);
  const auto sig = signatureBits(0xB0A71CE, 24);
  const Netlist marked = embedWatermark(orig, {1234}, sig);
  const auto got = extractWatermark(marked, {1234}, orig.gateCount(), 24);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, sig);
}

TEST(Watermark, WrongKeyFailsToVerify) {
  const Netlist orig = gate::makeArrayMultiplier(4);
  const auto sig = signatureBits(0xFEED, 16);
  const Netlist marked = embedWatermark(orig, {1111}, sig);
  const auto got = extractWatermark(marked, {2222}, orig.gateCount(), 16);
  EXPECT_FALSE(got.has_value());
}

TEST(Watermark, UnmarkedNetlistFailsToVerify) {
  const Netlist orig = gate::makeArrayMultiplier(4);
  EXPECT_FALSE(extractWatermark(orig, {42}, orig.gateCount(), 8).has_value());
}

TEST(Watermark, StripRemovesProofButNotFunction) {
  const Netlist orig = gate::makeRippleCarryAdder(6);
  const auto sig = signatureBits(0xA5, 8);
  const Netlist marked = embedWatermark(orig, {7}, sig);
  const Netlist stripped = stripWatermark(marked, orig.gateCount(), 8);
  // The adversary loses nothing functionally...
  expectSameFunction(orig, stripped, 2);
  EXPECT_EQ(stripped.gateCount(), orig.gateCount());
  // ...and the provider loses the proof of ownership.
  EXPECT_FALSE(
      extractWatermark(stripped, {7}, orig.gateCount(), 8).has_value());
}

TEST(Watermark, TooSmallNetlistRejected) {
  Netlist tiny;
  const auto a = tiny.addInput("a");
  tiny.markOutput(tiny.addGate(gate::GateType::Not, {a}));
  // One gate with one pin cannot host 8 distinct sites.
  EXPECT_THROW(embedWatermark(tiny, {1}, signatureBits(0xFF, 8)),
               std::invalid_argument);
}

class WatermarkProperty : public ::testing::TestWithParam<int> {};

TEST_P(WatermarkProperty, RandomNetlistsRandomSignatures) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL);
  const Netlist orig = gate::makeRandomNetlist(
      rng, 5 + static_cast<int>(rng.below(4)),
      30 + static_cast<int>(rng.below(40)), 3);
  const int bits = 4 + static_cast<int>(rng.below(12));
  const auto sig = signatureBits(rng.next(), bits);
  const WatermarkKey key{rng.next()};
  const Netlist marked = embedWatermark(orig, key, sig);
  expectSameFunction(orig, marked, rng.next());
  const auto got = extractWatermark(marked, key, orig.gateCount(), bits);
  ASSERT_TRUE(got.has_value()) << "seed " << GetParam();
  EXPECT_EQ(*got, sig);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WatermarkProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace vcad::ip
