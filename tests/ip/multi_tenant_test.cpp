// MultiTenantProviderServer tests: per-tenant endpoint shards and fee
// accounting, deterministic quota admission (and its typed PaymentRequired
// surface on the channel), job-queue verdicts over the wire, request-id
// demux across tenants, and the regression test proving shed accounting is
// uniform across the loopback and socket backends.
#include "ip/multi_tenant_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ip/provider_socket.hpp"
#include "net/socket_transport.hpp"
#include "rmi/loopback_transport.hpp"

namespace vcad::ip {
namespace {

/// Echo endpoint charging a flat fee per eval: enough server to exercise
/// tenancy, quotas, and billing without a full ProviderServer behind it.
/// Remembers which tenant id it was built for and how often it dispatched.
class TenantEchoEndpoint : public rmi::ServerEndpoint {
 public:
  explicit TenantEchoEndpoint(TenantId tenant) : tenant_(tenant) {}

  rmi::Response dispatch(const rmi::Request& request) override {
    ++dispatched_;
    rmi::Response r;
    if (request.method == rmi::MethodId::EvalFunction) {
      rmi::Args args = request.args;
      r.payload.writeWord(args.takeWord());
      r.payload.writeU64(tenant_);  // proof of which shard answered
      r.feeCents = 1.0;
    }
    return r;
  }
  std::string hostName() const override {
    return "tenant-" + std::to_string(tenant_) + ".host";
  }
  int dispatched() const { return dispatched_.load(); }

 private:
  TenantId tenant_;
  std::atomic<int> dispatched_{0};
};

/// Factory that records every shard it built (the server calls it at most
/// once per tenant id).
struct EchoFactory {
  std::mutex mutex;
  std::map<TenantId, TenantEchoEndpoint*> shards;

  MultiTenantProviderServer::EndpointFactory fn() {
    return [this](TenantId tenant) {
      auto ep = std::make_unique<TenantEchoEndpoint>(tenant);
      std::lock_guard<std::mutex> lock(mutex);
      shards[tenant] = ep.get();
      return std::unique_ptr<rmi::ServerEndpoint>(std::move(ep));
    };
  }
  int built() {
    std::lock_guard<std::mutex> lock(mutex);
    return static_cast<int>(shards.size());
  }
};

rmi::Request echoRequest(std::uint64_t value) {
  rmi::Request r;
  r.method = rmi::MethodId::EvalFunction;
  r.args.addWord(Word::fromUint(32, value));
  return r;
}

std::vector<std::uint8_t> sealedEchoRequest(std::uint64_t value) {
  std::vector<std::uint8_t> bytes = echoRequest(value).marshal().bytes();
  net::sealFrame(bytes);
  return bytes;
}

std::unique_ptr<rmi::RmiChannel> connectTenant(std::uint16_t port,
                                               TenantId tenant) {
  auto transport = net::SocketTransport::connectTcp("127.0.0.1", port);
  EXPECT_NE(transport, nullptr);
  if (transport == nullptr) return nullptr;
  auto ch = std::make_unique<rmi::RmiChannel>(std::move(transport),
                                              net::NetworkProfile::lan());
  ch->setTenant(tenant);
  return ch;
}

TEST(MultiTenantServer, TenantsGetTheirOwnShardAndLedger) {
  EchoFactory factory;
  MultiTenantProviderServer::Config cfg;
  MultiTenantProviderServer server(factory.fn(), cfg);
  const std::uint16_t port = server.listenTcp(0);
  ASSERT_NE(port, 0);
  server.start();

  auto chA = connectTenant(port, 1);
  auto chB = connectTenant(port, 2);
  ASSERT_NE(chA, nullptr);
  ASSERT_NE(chB, nullptr);
  for (int i = 0; i < 3; ++i) {
    rmi::Response r = chA->call(echoRequest(0xA0 + i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.payload.readWord().toUint(), 0xA0u + i);
    EXPECT_EQ(r.payload.readU64(), 1u);  // answered by tenant 1's shard
  }
  for (int i = 0; i < 2; ++i) {
    rmi::Response r = chB->call(echoRequest(0xB0 + i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.payload.readWord().toUint(), 0xB0u + i);
    EXPECT_EQ(r.payload.readU64(), 2u);  // answered by tenant 2's shard
  }

  EXPECT_EQ(factory.built(), 2);
  const TenantUsage a = server.tenantUsage(1);
  const TenantUsage b = server.tenantUsage(2);
  EXPECT_EQ(a.dispatches, 3u);
  EXPECT_DOUBLE_EQ(a.feesCents, 3.0);
  EXPECT_EQ(a.billedCalls, 3u);
  EXPECT_EQ(b.dispatches, 2u);
  EXPECT_DOUBLE_EQ(b.feesCents, 2.0);
  EXPECT_EQ(server.tenantUsage(99).dispatches, 0u);  // never seen: zeroes
  EXPECT_EQ(server.stats().tenantsSeen, 2u);
  // The reply can reach the client before the worker bumps the counter —
  // wait on the stats condition variable.
  EXPECT_TRUE(server.awaitStats(
      [](const MultiTenantProviderServer::Stats& s) {
        return s.framesServed == 5;
      },
      2.0));
  // Channel-side fee ledgers mirror the per-tenant server ledgers.
  EXPECT_DOUBLE_EQ(chA->stats().feesCents, a.feesCents);
  EXPECT_DOUBLE_EQ(chB->stats().feesCents, b.feesCents);
  server.stop();
}

TEST(MultiTenantServer, QuotaExhaustionIsDeterministicTerminalAndScoped) {
  // Two identical runs against fresh servers must reject at exactly the
  // same call index; the rejection must surface as PaymentRequired with no
  // retry burned; and the other tenant must be untouched.
  for (int run = 0; run < 2; ++run) {
    SCOPED_TRACE("run " + std::to_string(run));
    EchoFactory factory;
    MultiTenantProviderServer::Config cfg;
    MultiTenantProviderServer server(factory.fn(), cfg);
    TenantQuota quota;
    quota.maxBilledCalls = 3;
    server.setTenantQuota(7, quota);  // before the tenant is ever seen
    const std::uint16_t port = server.listenTcp(0);
    ASSERT_NE(port, 0);
    server.start();

    auto limited = connectTenant(port, 7);
    auto unlimited = connectTenant(port, 8);
    ASSERT_NE(limited, nullptr);
    ASSERT_NE(unlimited, nullptr);
    int served = 0;
    int rejectedAt = -1;
    for (int i = 0; i < 6; ++i) {
      rmi::Response r = limited->call(echoRequest(i));
      if (r.ok()) {
        ++served;
      } else {
        EXPECT_EQ(r.status, rmi::Status::PaymentRequired);
        if (rejectedAt < 0) rejectedAt = i;
      }
    }
    EXPECT_EQ(served, 3);
    EXPECT_EQ(rejectedAt, 3);  // deterministic: always the 4th call
    // Quota rejections are terminal, not retried: three rejected calls,
    // three typed rejections, zero retries or timeouts burned.
    EXPECT_EQ(limited->stats().quotaRejections, 3u);
    EXPECT_EQ(limited->stats().retries, 0u);
    EXPECT_EQ(limited->stats().timeouts, 0u);
    EXPECT_EQ(limited->stats().transportFailures, 0u);
    const TenantUsage u = server.tenantUsage(7);
    EXPECT_EQ(u.billedCalls, 3u);
    EXPECT_EQ(u.quotaRejected, 3u);
    EXPECT_DOUBLE_EQ(u.feesCents, 3.0);
    EXPECT_EQ(server.stats().quotaRejected, 3u);
    // The over-quota tenant's shard never saw the rejected calls...
    {
      std::lock_guard<std::mutex> lock(factory.mutex);
      EXPECT_EQ(factory.shards[7]->dispatched(), 3);
    }
    // ...and the other tenant sails on.
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(unlimited->call(echoRequest(i)).ok());
    }
    EXPECT_EQ(unlimited->stats().quotaRejections, 0u);
    EXPECT_EQ(server.tenantUsage(8).billedCalls, 5u);
    server.stop();
  }
}

TEST(MultiTenantServer, FeeQuotaCutsOffAtTheConfiguredSpend) {
  EchoFactory factory;
  MultiTenantProviderServer::Config cfg;
  TenantQuota quota;
  quota.maxFeeCents = 2.5;  // 1.0 per call: two bill, the third crosses
  cfg.defaultQuota = quota;
  MultiTenantProviderServer server(factory.fn(), cfg);
  const std::uint16_t port = server.listenTcp(0);
  ASSERT_NE(port, 0);
  server.start();
  auto ch = connectTenant(port, 4);
  ASSERT_NE(ch, nullptr);
  ASSERT_TRUE(ch->call(echoRequest(1)).ok());  // fees 1.0 < 2.5
  ASSERT_TRUE(ch->call(echoRequest(2)).ok());  // fees 2.0 < 2.5
  ASSERT_TRUE(ch->call(echoRequest(3)).ok());  // fees 3.0: the last admitted
  rmi::Response over = ch->call(echoRequest(4));
  EXPECT_EQ(over.status, rmi::Status::PaymentRequired);
  EXPECT_DOUBLE_EQ(server.tenantUsage(4).feesCents, 3.0);
  server.stop();
}

TEST(MultiTenantServer, SameRequestIdOnTwoTenantsNeverCrosses) {
  // Cross-tenant request-id confusion, end to end: two connections send the
  // same request id with different tenant ids and different payloads; each
  // must get its own shard's answer back on its own wire.
  EchoFactory factory;
  MultiTenantProviderServer::Config cfg;
  MultiTenantProviderServer server(factory.fn(), cfg);
  const std::uint16_t port = server.listenTcp(0);
  ASSERT_NE(port, 0);
  server.start();
  auto wireA = net::SocketTransport::connectTcp("127.0.0.1", port);
  auto wireB = net::SocketTransport::connectTcp("127.0.0.1", port);
  ASSERT_NE(wireA, nullptr);
  ASSERT_NE(wireB, nullptr);
  net::RequestFrameHeader h;
  h.methodId = static_cast<std::uint32_t>(rmi::MethodId::EvalFunction);
  h.requestId = 42;  // deliberately identical on both wires
  h.priority = net::JobPriority::Compute;
  h.tenantId = 1;
  wireA->send(h, sealedEchoRequest(0x11));
  h.tenantId = 2;
  wireB->send(h, sealedEchoRequest(0x22));
  net::TransportReply a = wireA->awaitReply(42, 5.0);
  net::TransportReply b = wireB->awaitReply(42, 5.0);
  ASSERT_TRUE(a.delivered);
  ASSERT_TRUE(b.delivered);
  ASSERT_EQ(a.status, net::FrameStatus::Ok);
  ASSERT_EQ(b.status, net::FrameStatus::Ok);
  ASSERT_TRUE(net::openFrame(a.sealedPayload));
  ASSERT_TRUE(net::openFrame(b.sealedPayload));
  net::ByteBuffer bufA(std::move(a.sealedPayload));
  net::ByteBuffer bufB(std::move(b.sealedPayload));
  rmi::Response respA = rmi::Response::unmarshal(bufA);
  rmi::Response respB = rmi::Response::unmarshal(bufB);
  EXPECT_EQ(respA.payload.readWord().toUint(), 0x11u);
  EXPECT_EQ(respA.payload.readU64(), 1u);
  EXPECT_EQ(respB.payload.readWord().toUint(), 0x22u);
  EXPECT_EQ(respB.payload.readU64(), 2u);
  EXPECT_EQ(server.tenantUsage(1).dispatches, 1u);
  EXPECT_EQ(server.tenantUsage(2).dispatches, 1u);
  server.stop();
}

// --- job-queue verdicts over the wire --------------------------------------

/// Shard whose dispatch blocks until released — pins the queue's single
/// worker so admission states can be staged deterministically.
class GatedShard : public rmi::ServerEndpoint {
 public:
  rmi::Response dispatch(const rmi::Request& request) override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    rmi::Response r;
    if (request.method == rmi::MethodId::EvalFunction) {
      rmi::Args args = request.args;
      r.payload.writeWord(args.takeWord());
    }
    return r;
  }
  std::string hostName() const override { return "gated.host"; }
  void awaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, n] { return entered_ >= n; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool released_ = false;
};

TEST(MultiTenantServer, QueueVerdictsSurfaceAsTypedFrameStatuses) {
  std::atomic<GatedShard*> shard{nullptr};
  MultiTenantProviderServer::Config cfg;
  cfg.queue.workers = 1;
  cfg.queue.maxQueueDepth = 2;
  cfg.queue.perPriorityDepth[static_cast<std::size_t>(
      net::JobPriority::Compute)] = 1;
  MultiTenantProviderServer server(
      [&shard](TenantId) {
        auto ep = std::make_unique<GatedShard>();
        shard.store(ep.get(), std::memory_order_release);
        return std::unique_ptr<rmi::ServerEndpoint>(std::move(ep));
      },
      cfg);
  const std::uint16_t port = server.listenTcp(0);
  ASSERT_NE(port, 0);
  server.start();
  auto wire = net::SocketTransport::connectTcp("127.0.0.1", port);
  ASSERT_NE(wire, nullptr);

  net::RequestFrameHeader h;
  h.methodId = static_cast<std::uint32_t>(rmi::MethodId::EvalFunction);
  h.tenantId = 1;
  h.priority = net::JobPriority::Compute;
  // #1 occupies the single worker (gated inside dispatch).
  h.requestId = 1;
  wire->send(h, sealedEchoRequest(1));
  // The factory runs on the reader thread when frame #1 arrives; wait for
  // the shard to exist, then for its dispatch to start.
  while (shard.load(std::memory_order_acquire) == nullptr) {
    std::this_thread::yield();
  }
  shard.load()->awaitEntered(1);
  // #2 queues in the Compute lane (depth 1 == lane bound).
  h.requestId = 2;
  wire->send(h, sealedEchoRequest(2));
  // #3 exceeds the Compute lane bound -> TooManyPending.
  h.requestId = 3;
  wire->send(h, sealedEchoRequest(3));
  net::TransportReply shed = wire->awaitReply(3, 5.0);
  ASSERT_TRUE(shed.delivered);
  EXPECT_EQ(shed.status, net::FrameStatus::TooManyPending);
  // #4 on another lane still fits (global depth 2)...
  h.requestId = 4;
  h.priority = net::JobPriority::Query;
  h.methodId = static_cast<std::uint32_t>(rmi::MethodId::GetCatalog);
  wire->send(h, sealedEchoRequest(4));
  // ...but #5 hits the global bound -> Overloaded.
  h.requestId = 5;
  wire->send(h, sealedEchoRequest(5));
  net::TransportReply overloaded = wire->awaitReply(5, 5.0);
  ASSERT_TRUE(overloaded.delivered);
  EXPECT_EQ(overloaded.status, net::FrameStatus::Overloaded);

  shard.load()->release();
  for (std::uint64_t id : {1, 2, 4}) {
    net::TransportReply ok = wire->awaitReply(id, 5.0);
    ASSERT_TRUE(ok.delivered) << "request " << id;
    EXPECT_EQ(ok.status, net::FrameStatus::Ok) << "request " << id;
  }
  server.waitIdle();  // executed counters settle under the queue mutex
  EXPECT_EQ(server.stats().shedTooManyPending, 1u);
  EXPECT_EQ(server.stats().shedOverloaded, 1u);
  EXPECT_EQ(server.tenantUsage(1).shed, 2u);
  const JobQueue::Stats qs = server.queueStats();
  EXPECT_EQ(qs.shedTooManyPending, 1u);
  EXPECT_EQ(qs.shedOverloaded, 1u);
  EXPECT_EQ(qs.executed, 3u);
  server.stop();
}

// --- satellite: shed accounting is uniform across backends -----------------

TEST(ShedUniformity, LoopbackAndSocketBackendsCountShedsIdentically) {
  // Loopback backend: admission cap on the in-process transport. One gated
  // call occupies the only dispatch slot, then one blocking call sheds
  // through its whole attempt budget.
  GatedShard loopShard;
  rmi::RmiChannel loopCh(loopShard, net::NetworkProfile::lan());
  auto& loopback = dynamic_cast<rmi::LoopbackTransport&>(loopCh.wire());
  loopback.setMaxConcurrentDispatches(1);
  rmi::RmiChannel::CallHandle gated = loopCh.submit(echoRequest(0xF0));
  loopShard.awaitEntered(1);  // the only slot is now occupied
  rmi::Response loopRejected = loopCh.call(echoRequest(0xF1));
  EXPECT_EQ(loopRejected.status, rmi::Status::TransportFailure);
  loopShard.release();
  EXPECT_TRUE(loopCh.wait(gated).ok());
  const rmi::ChannelStats loop = loopCh.stats();

  // Socket backend: admission cap on the provider socket front end. The
  // slot is occupied over a separate raw connection — the socket server
  // dispatches inline on the occupying connection's reader thread, so the
  // shed probe must arrive on its own connection to be seen at all.
  GatedShard sockShard;
  ProviderSocketServer server(sockShard);
  const std::uint16_t port = server.listenTcp(0);
  ASSERT_NE(port, 0);
  server.setMaxConcurrentDispatches(1);
  server.start();
  auto occupier = net::SocketTransport::connectTcp("127.0.0.1", port);
  ASSERT_NE(occupier, nullptr);
  net::RequestFrameHeader h;
  h.methodId = static_cast<std::uint32_t>(rmi::MethodId::EvalFunction);
  h.requestId = 900;
  occupier->send(h, sealedEchoRequest(0xF0));
  sockShard.awaitEntered(1);  // the only slot is now occupied
  auto transport = net::SocketTransport::connectTcp("127.0.0.1", port);
  ASSERT_NE(transport, nullptr);
  rmi::RmiChannel sockCh(std::move(transport), net::NetworkProfile::lan());
  rmi::Response sockRejected = sockCh.call(echoRequest(0xF1));
  EXPECT_EQ(sockRejected.status, rmi::Status::TransportFailure);
  sockShard.release();
  net::TransportReply fin = occupier->awaitReply(900, 5.0);
  EXPECT_TRUE(fin.delivered);
  EXPECT_EQ(fin.status, net::FrameStatus::Ok);
  const rmi::ChannelStats sock = sockCh.stats();
  server.stop();

  // The shed call is deterministic on both backends: the whole attempt
  // budget burns on typed TooManyPending replies, counted identically —
  // shed accounting is part of the backend-neutrality contract.
  const auto budget =
      static_cast<std::uint64_t>(loopCh.retryPolicy().maxAttempts);
  EXPECT_EQ(loop.shedResponses, budget);
  EXPECT_EQ(sock.shedResponses, budget);
  EXPECT_EQ(loop.timeouts, budget);
  EXPECT_EQ(sock.timeouts, budget);
  EXPECT_EQ(loop.retries, budget - 1);
  EXPECT_EQ(sock.retries, budget - 1);
  EXPECT_EQ(loop.transportFailures, 1u);
  EXPECT_EQ(sock.transportFailures, 1u);
  EXPECT_EQ(loop.quotaRejections, 0u);
  EXPECT_EQ(sock.quotaRejections, 0u);
  // And the server-side counters saw the same thing.
  EXPECT_EQ(loopback.shedRequests(), budget);
  EXPECT_EQ(server.stats().shedRequests, budget);
}

TEST(MultiTenantServer, StopDrainsAndStaysStopped) {
  EchoFactory factory;
  MultiTenantProviderServer::Config cfg;
  MultiTenantProviderServer server(factory.fn(), cfg);
  const std::uint16_t port = server.listenTcp(0);
  ASSERT_NE(port, 0);
  server.start();
  {
    auto ch = connectTenant(port, 1);
    ASSERT_NE(ch, nullptr);
    ASSERT_TRUE(ch->call(echoRequest(1)).ok());
  }
  server.stop();
  server.stop();  // idempotent
  // Post-stop the listener is gone: a fresh connect must fail.
  auto late = net::SocketTransport::connectTcp("127.0.0.1", port);
  if (late != nullptr) {
    // The OS may accept briefly on some platforms; any frame must go
    // unanswered.
    net::RequestFrameHeader h;
    h.methodId = static_cast<std::uint32_t>(rmi::MethodId::EvalFunction);
    h.requestId = 9;
    late->send(h, sealedEchoRequest(9));
    EXPECT_FALSE(late->awaitReply(9, 0.2).delivered);
  }
}

}  // namespace
}  // namespace vcad::ip
