// JobQueue tests: priority-lane ordering, typed admission verdicts
// (TooManyPending / Overloaded / Stopped), bounded depths, graceful stop,
// and the stats counters the multi-tenant front end surfaces.
#include "ip/job_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "rmi/protocol.hpp"

namespace vcad::ip {
namespace {

/// Blocks the single worker until released, so tests can stack up a known
/// queue state behind it.
struct WorkerGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool released = false;

  JobQueue::Job job() {
    return [this] {
      std::unique_lock<std::mutex> lock(mutex);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
  }
  void awaitEntered() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return entered; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
};

TEST(JobQueue, DrainsMostUrgentLaneFirstFifoWithinLane) {
  JobQueue::Config cfg;
  cfg.workers = 1;
  JobQueue q(cfg);
  WorkerGate gate;
  ASSERT_EQ(q.add(net::JobPriority::Compute, gate.job()), JobQueue::Admit::Ok);
  gate.awaitEntered();  // the worker is pinned; everything below queues

  std::mutex orderMutex;
  std::vector<int> order;
  auto record = [&orderMutex, &order](int tag) {
    return [&orderMutex, &order, tag] {
      std::lock_guard<std::mutex> lock(orderMutex);
      order.push_back(tag);
    };
  };
  // Enqueued most-bulk-first, two per lane — execution must come back
  // most-urgent-first, FIFO inside each lane.
  ASSERT_EQ(q.add(net::JobPriority::Batch, record(30)), JobQueue::Admit::Ok);
  ASSERT_EQ(q.add(net::JobPriority::Batch, record(31)), JobQueue::Admit::Ok);
  ASSERT_EQ(q.add(net::JobPriority::Compute, record(20)), JobQueue::Admit::Ok);
  ASSERT_EQ(q.add(net::JobPriority::Query, record(10)), JobQueue::Admit::Ok);
  ASSERT_EQ(q.add(net::JobPriority::Query, record(11)), JobQueue::Admit::Ok);
  ASSERT_EQ(q.add(net::JobPriority::Control, record(0)), JobQueue::Admit::Ok);
  gate.release();
  q.drain();
  EXPECT_EQ(order, (std::vector<int>{0, 10, 11, 20, 30, 31}));

  const JobQueue::Stats s = q.stats();
  EXPECT_EQ(s.enqueued, 7u);
  EXPECT_EQ(s.executed, 7u);
  EXPECT_EQ(s.peakDepth, 6u);
  EXPECT_EQ(s.executedByPriority[0], 1u);  // Control
  EXPECT_EQ(s.executedByPriority[1], 2u);  // Query
  EXPECT_EQ(s.executedByPriority[2], 2u);  // Compute (the gate + one)
  EXPECT_EQ(s.executedByPriority[3], 2u);  // Batch
}

TEST(JobQueue, AdmissionVerdictsAreTypedAndCounted) {
  JobQueue::Config cfg;
  cfg.workers = 1;
  cfg.maxQueueDepth = 2;
  cfg.perPriorityDepth[static_cast<std::size_t>(net::JobPriority::Batch)] = 1;
  JobQueue q(cfg);
  WorkerGate gate;
  ASSERT_EQ(q.add(net::JobPriority::Compute, gate.job()), JobQueue::Admit::Ok);
  gate.awaitEntered();  // running, not queued: depth is 0

  std::atomic<int> ran{0};
  auto bump = [&ran] { ++ran; };
  // Lane bound: the Batch lane holds one job; a second is TooManyPending
  // even though the global queue still has room.
  EXPECT_EQ(q.add(net::JobPriority::Batch, bump), JobQueue::Admit::Ok);
  EXPECT_EQ(q.add(net::JobPriority::Batch, bump),
            JobQueue::Admit::TooManyPending);
  // Global bound: one more queued job reaches maxQueueDepth; the next is
  // Overloaded regardless of its lane.
  EXPECT_EQ(q.add(net::JobPriority::Query, bump), JobQueue::Admit::Ok);
  EXPECT_EQ(q.add(net::JobPriority::Query, bump), JobQueue::Admit::Overloaded);
  EXPECT_EQ(q.add(net::JobPriority::Control, bump),
            JobQueue::Admit::Overloaded);
  EXPECT_EQ(q.depth(), 2u);

  gate.release();
  q.drain();
  EXPECT_EQ(ran.load(), 2);  // shed jobs never ran
  const JobQueue::Stats s = q.stats();
  EXPECT_EQ(s.enqueued, 3u);
  EXPECT_EQ(s.executed, 3u);
  EXPECT_EQ(s.shedTooManyPending, 1u);
  EXPECT_EQ(s.shedOverloaded, 2u);
}

TEST(JobQueue, StopIsGracefulAndTerminal) {
  JobQueue::Config cfg;
  cfg.workers = 2;
  JobQueue q(cfg);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(q.add(net::JobPriority::Compute, [&ran] { ++ran; }),
              JobQueue::Admit::Ok);
  }
  q.stop();
  // Graceful: every admitted job executed before stop() returned.
  EXPECT_EQ(ran.load(), 16);
  // Terminal: post-stop admissions are rejected with the typed verdict and
  // their jobs never run.
  EXPECT_EQ(q.add(net::JobPriority::Control, [&ran] { ++ran; }),
            JobQueue::Admit::Stopped);
  EXPECT_EQ(ran.load(), 16);
  const JobQueue::Stats s = q.stats();
  EXPECT_EQ(s.executed, 16u);
  EXPECT_EQ(s.rejectedStopped, 1u);
  q.stop();  // idempotent
}

TEST(JobQueue, VerdictAndPriorityNamesRender) {
  EXPECT_EQ(toString(JobQueue::Admit::Ok), "Ok");
  EXPECT_EQ(toString(JobQueue::Admit::TooManyPending), "TooManyPending");
  EXPECT_EQ(toString(JobQueue::Admit::Overloaded), "Overloaded");
  EXPECT_EQ(toString(JobQueue::Admit::Stopped), "Stopped");
  EXPECT_EQ(net::toString(net::JobPriority::Control), std::string("Control"));
  EXPECT_EQ(net::toString(net::JobPriority::Batch), std::string("Batch"));
}

TEST(JobQueue, MethodsMapToTheExpectedLanes) {
  using net::JobPriority;
  using rmi::MethodId;
  // Session control outranks everything; catalog lookups outrank compute;
  // bulk table fetches ride the batch lane.
  EXPECT_EQ(rmi::priorityFor(MethodId::OpenSession), JobPriority::Control);
  EXPECT_EQ(rmi::priorityFor(MethodId::CloseSession), JobPriority::Control);
  EXPECT_EQ(rmi::priorityFor(MethodId::GetCatalog), JobPriority::Query);
  EXPECT_EQ(rmi::priorityFor(MethodId::EvalFunction), JobPriority::Compute);
  EXPECT_EQ(rmi::priorityFor(MethodId::Instantiate), JobPriority::Compute);
  EXPECT_EQ(rmi::priorityFor(MethodId::EstimatePower), JobPriority::Batch);
  EXPECT_EQ(rmi::priorityFor(MethodId::GetDetectionTables), JobPriority::Batch);
}

}  // namespace
}  // namespace vcad::ip
