// User-IP protection, end to end. The paper: "a good test sequence is IP
// that might need protection" and "JavaCAD transmits only [port-level]
// information over the RMI channel". These tests spy on every request a
// provider receives during virtual fault simulation and verify that the
// provider learns nothing beyond its own component's port values: no
// design-level patterns, no primary-output responses, no structure.
#include <gtest/gtest.h>

#include "fault/block_design.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"
#include "ip/remote_component.hpp"

namespace vcad::ip {
namespace {

/// Endpoint decorator recording everything that crosses the wire.
class Spy final : public rmi::ServerEndpoint, public PublicPartSource {
 public:
  explicit Spy(ProviderServer& inner) : inner_(inner) {}

  rmi::Response dispatch(const rmi::Request& request) override {
    requests.push_back(request);
    return inner_.dispatch(request);
  }
  std::string hostName() const override { return inner_.hostName(); }
  PublicPart downloadPublicPart(const std::string& component,
                                std::uint64_t param) const override {
    return inner_.downloadPublicPart(component, param);
  }

  std::vector<rmi::Request> requests;

 private:
  ProviderServer& inner_;
};

TEST(Privacy, ProviderSeesOnlyComponentPortWidths) {
  // Design: 4 primary inputs -> FRONT(AND) -> remote IP1 -> BACK gates.
  // IP1 has 2 single-bit inputs; the user's test patterns are 4 bits wide.
  // Every word the provider receives must be IP1-port sized (2 bits for
  // detection tables), never the design-level 4-bit pattern.
  LogSink log;
  ProviderServer server("p", &log);
  IpComponentSpec spec;
  spec.name = "IP1";
  spec.minWidth = 1;
  spec.maxWidth = 1;
  spec.functional = ModelLevel::Static;
  spec.testability = ModelLevel::Dynamic;
  server.registerComponent(
      spec,
      [](std::uint64_t) {
        return std::make_shared<const gate::Netlist>(gate::makeIp1HalfAdder());
      },
      [](std::uint64_t) {
        PublicPart pub;
        pub.functional = [](const Word& in, const rmi::Sandbox&) {
          Word out(2);
          out.setBit(0, logicXor(in.bit(0), in.bit(1)));
          out.setBit(1, logicAnd(in.bit(0), in.bit(1)));
          return out;
        };
        return pub;
      });
  Spy spy(server);
  rmi::RmiChannel channel(spy, net::NetworkProfile::ideal(), &log);
  ProviderHandle provider(channel);

  // The user design around the remote component.
  Circuit c("design");
  auto& A = c.makeBit("A");
  auto& B = c.makeBit("B");
  auto& C = c.makeBit("C");
  auto& D = c.makeBit("D");
  auto& E = c.makeBit("E");
  auto& OIP1 = c.makeBit("OIP1");
  auto& OIP2 = c.makeBit("OIP2");
  auto& O1 = c.makeBit("O1");
  auto& O2 = c.makeBit("O2");

  auto front = std::make_shared<gate::Netlist>();
  {
    const auto a = front->addInput("a");
    const auto b = front->addInput("b");
    front->markOutput(front->addGate(gate::GateType::And, {a, b}, "E"));
  }
  c.adopt(gate::makeBitLevelModule("FRONT", front, {&A, &B}, {&E}));
  RemoteConfig cfg;
  cfg.collectPower = false;
  auto& ip1 = c.make<RemoteComponent>(
      "IP1", provider, "IP1", 1,
      std::vector<std::pair<std::string, Connector*>>{{"IIP1", &E},
                                                      {"IIP2", &C}},
      std::vector<std::pair<std::string, Connector*>>{{"OIP1", &OIP1},
                                                      {"OIP2", &OIP2}}, cfg);
  auto back = std::make_shared<gate::Netlist>();
  {
    const auto oip1 = back->addInput("oip1");
    const auto d = back->addInput("d");
    const auto oip2 = back->addInput("oip2");
    back->markOutput(back->addGate(gate::GateType::And, {oip1, d}, "O1"));
    back->markOutput(back->addGate(gate::GateType::Buf, {oip2}, "O2"));
  }
  c.adopt(gate::makeBitLevelModule("BACK", back, {&OIP1, &D, &OIP2},
                                   {&O1, &O2}));

  RemoteFaultClient remoteClient(ip1);
  auto& frontModule = *dynamic_cast<gate::NetlistModule*>(c.findChild("FRONT"));
  auto& backModule = *dynamic_cast<gate::NetlistModule*>(c.findChild("BACK"));
  fault::LocalFaultBlock frontClient(frontModule);
  fault::LocalFaultBlock backClient(backModule);

  fault::VirtualFaultSimulator sim(
      c, {&frontClient, &remoteClient, &backClient}, {&A, &B, &C, &D},
      {&O1, &O2});
  const auto res = sim.runPacked(
      {Word::fromString("0011"), Word::fromString("1011"),
       Word::fromString("1101"), Word::fromString("0110")});
  EXPECT_GT(res.detected.size(), 0u);

  // --- what did the provider actually learn? ------------------------------
  ASSERT_FALSE(spy.requests.empty());
  for (const auto& req : spy.requests) {
    rmi::Args args = req.args;  // copy: re-walk the tagged payload
    switch (req.method) {
      case rmi::MethodId::GetDetectionTable: {
        const Word in = args.takeWord();
        // Component-port configuration only: exactly IP1's 2 input bits,
        // never the user's 4-bit design pattern.
        EXPECT_EQ(in.width(), 2);
        break;
      }
      case rmi::MethodId::Instantiate:
      case rmi::MethodId::OpenSession:
      case rmi::MethodId::GetFaultList:
        break;  // no signal data at all
      default:
        ADD_FAILURE() << "unexpected method crossed the channel: "
                      << rmi::toString(req.method);
    }
  }
  // The provider never received a primary-output response either: detection
  // (pass/fail of its faults in the design) stays with the user.
  for (const auto& req : spy.requests) {
    EXPECT_NE(req.method, rmi::MethodId::EvalFunction);
  }
}

TEST(Privacy, MarshallingFilterBlocksDesignDumpEvenIfCodeTries) {
  LogSink log;
  ProviderServer server("p", &log);
  IpComponentSpec spec;
  spec.name = "X";
  spec.minWidth = 2;
  spec.maxWidth = 8;
  server.registerComponent(
      spec,
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeRippleCarryAdder(static_cast<int>(w)));
      },
      nullptr);
  Spy spy(server);
  rmi::RmiChannel channel(spy, net::NetworkProfile::ideal(), &log);
  ProviderHandle provider(channel);

  // A misbehaving tool tries to ship the design topology to the provider.
  rmi::Request leak;
  leak.session = provider.session();
  leak.method = rmi::MethodId::EstimatePower;
  leak.args.addWordVector({Word::fromUint(4, 1)});
  leak.args.addDesignGraph("INA->REGA->MULT; INB->REGB->MULT; MULT->OUT");
  const auto resp = channel.call(leak);
  EXPECT_EQ(resp.status, rmi::Status::SecurityViolation);
  // Nothing reached the provider.
  for (const auto& req : spy.requests) {
    EXPECT_NE(req.method, rmi::MethodId::EstimatePower);
  }
  EXPECT_EQ(log.count(Severity::Security), 1u);
}

}  // namespace
}  // namespace vcad::ip
