#include "ip/provider_server.hpp"

#include <gtest/gtest.h>

#include "gate/generators.hpp"
#include "ip/remote_component.hpp"

namespace vcad::ip {
namespace {

using rmi::MethodId;

/// Registers the paper's multiplier component on a provider.
void registerMultiplier(ProviderServer& server, ModelLevel power,
                        ModelLevel testability = ModelLevel::Dynamic) {
  IpComponentSpec spec;
  spec.name = "MultFastLowPower";
  spec.description = "high-performance low-power array multiplier";
  spec.minWidth = 2;
  spec.maxWidth = 16;
  spec.functional = ModelLevel::Static;
  spec.power = power;
  spec.timing = ModelLevel::Dynamic;
  spec.area = ModelLevel::Dynamic;
  spec.testability = testability;
  spec.staticPowerMw = 25.0;
  spec.fees.perPowerPatternCents = 0.1;
  spec.fees.perDetectionTableCents = 0.05;
  server.registerComponent(
      std::move(spec),
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeArrayMultiplier(static_cast<int>(w)));
      },
      [](std::uint64_t w) {
        PublicPart pub;
        pub.functional = [w](const Word& in, const rmi::Sandbox&) {
          const int width = static_cast<int>(w);
          const Word a = in.slice(0, width);
          const Word b = in.slice(width, width);
          if (!a.isFullyKnown() || !b.isFullyKnown()) {
            return Word::allX(2 * width);
          }
          return Word::fromUint(2 * width, a.toUint() * b.toUint());
        };
        return pub;
      });
}

struct Fixture {
  LogSink log;
  ProviderServer server{"provider.host.name", &log};
  rmi::RmiChannel channel{server, net::NetworkProfile::ideal(), &log};

  explicit Fixture(ModelLevel power = ModelLevel::Dynamic) {
    registerMultiplier(server, power);
  }
};

TEST(ProviderServer, CatalogRoundTrip) {
  Fixture f;
  ProviderHandle handle(f.channel);
  const auto specs = handle.catalog();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].name, "MultFastLowPower");
  EXPECT_EQ(specs[0].power, ModelLevel::Dynamic);
  EXPECT_DOUBLE_EQ(specs[0].fees.perPowerPatternCents, 0.1);
}

TEST(ProviderServer, InstantiateValidatesParameter) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args bad;
  bad.addU64(64);  // outside [2, 16]
  const auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(bad), "MultFastLowPower");
  EXPECT_EQ(resp.status, rmi::Status::Error);

  rmi::Args ok;
  ok.addU64(8);
  const auto good =
      handle.call(MethodId::Instantiate, 0, std::move(ok), "MultFastLowPower");
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(f.server.liveInstanceCount(), 1u);
}

TEST(ProviderServer, UnknownComponentAndSession) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(8);
  EXPECT_EQ(handle.call(MethodId::Instantiate, 0, std::move(args), "Nope")
                .status,
            rmi::Status::NotFound);

  rmi::Request alien;
  alien.session = 999999;
  alien.method = MethodId::GetCatalog;
  EXPECT_EQ(f.channel.call(alien).status, rmi::Status::UnknownSession);
}

TEST(ProviderServer, InstancesArePrivateToTheirSession) {
  Fixture f;
  ProviderHandle alice(f.channel);
  ProviderHandle mallory(f.channel);
  rmi::Args args;
  args.addU64(4);
  auto resp =
      alice.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  ASSERT_TRUE(resp.ok());
  const rmi::InstanceId id = resp.payload.readU64();

  rmi::Args evalArgs;
  evalArgs.addWord(Word::fromUint(8, 0x33));
  EXPECT_EQ(mallory.call(MethodId::EvalFunction, id, std::move(evalArgs)).status,
            rmi::Status::NotFound);
}

TEST(ProviderServer, CloseSessionReapsInstances) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(4);
  handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  EXPECT_EQ(f.server.liveInstanceCount(), 1u);
  handle.call(MethodId::CloseSession, 0, rmi::Args{});
  EXPECT_EQ(f.server.liveInstanceCount(), 0u);
}

TEST(ProviderServer, PowerRejectedWithoutDynamicModel) {
  Fixture f(ModelLevel::Static);  // static data only, no server estimation
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(4);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();
  rmi::Args pw;
  pw.addWordVector({Word::fromUint(8, 1), Word::fromUint(8, 2)});
  EXPECT_EQ(handle.call(MethodId::EstimatePower, id, std::move(pw)).status,
            rmi::Status::Error);
}

TEST(ProviderServer, BatchedDetectionTablesMatchSingles) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(3);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();

  const std::vector<Word> configs = {
      Word::fromUint(6, 0x15), Word::fromUint(6, 0x2A), Word::fromUint(6, 0x00)};

  // Batched: one call, one response carrying every table.
  rmi::Args batch;
  batch.addWordVector(configs);
  auto bresp = handle.call(MethodId::GetDetectionTables, id, std::move(batch));
  ASSERT_TRUE(bresp.ok());
  ASSERT_EQ(bresp.payload.readU32(), configs.size());
  // The batch is charged per table, same rate as the unbatched method.
  EXPECT_DOUBLE_EQ(bresp.feeCents, 0.05 * static_cast<double>(configs.size()));

  for (const Word& w : configs) {
    const auto batched = fault::DetectionTable::deserialize(bresp.payload);
    rmi::Args one;
    one.addWord(w);
    auto sresp = handle.call(MethodId::GetDetectionTable, id, std::move(one));
    ASSERT_TRUE(sresp.ok());
    const auto single = fault::DetectionTable::deserialize(sresp.payload);
    EXPECT_EQ(batched.toString(), single.toString());
  }
}

TEST(ProviderServer, BatchedDetectionTablesNeedDynamicTestability) {
  Fixture f(ModelLevel::Dynamic);
  // Re-register with static-only testability.
  registerMultiplier(f.server, ModelLevel::Dynamic, ModelLevel::Static);
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(3);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();
  rmi::Args batch;
  batch.addWordVector({Word::fromUint(6, 1)});
  EXPECT_EQ(handle.call(MethodId::GetDetectionTables, id, std::move(batch)).status,
            rmi::Status::Error);
}

TEST(ProviderServer, FeesAccumulatePerSession) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(4);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();

  rmi::Args pw;
  pw.addWordVector(
      {Word::fromUint(8, 1), Word::fromUint(8, 2), Word::fromUint(8, 3)});
  auto presp = handle.call(MethodId::EstimatePower, id, std::move(pw));
  ASSERT_TRUE(presp.ok());
  // 3 patterns at 0.1 cents each.
  EXPECT_DOUBLE_EQ(presp.feeCents, 0.3);
  EXPECT_DOUBLE_EQ(f.server.sessionFeesCents(handle.session()), 0.3);
  // Channel-side accounting matches.
  EXPECT_DOUBLE_EQ(f.channel.stats().feesCents, 0.3);
}

TEST(ProviderServer, EvalRecordsRemoteHistoryForPowerEstimation) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(4);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();

  for (std::uint64_t v : {0x12u, 0xFFu, 0x00u, 0xA5u}) {
    rmi::Args ev;
    ev.addWord(Word::fromUint(8, v));
    ASSERT_TRUE(handle.call(MethodId::EvalFunction, id, std::move(ev)).ok());
  }
  // Server-side observability: the private part recorded every evaluation.
  const PrivateComponent* impl = f.server.instanceForTesting(id);
  ASSERT_NE(impl, nullptr);
  EXPECT_EQ(impl->evalCount(), 4u);
  EXPECT_EQ(f.server.instanceForTesting(9999), nullptr);

  // Empty batch -> use the server-recorded history (MR-mode buffering).
  rmi::Args pw;
  pw.addWordVector({});
  auto presp = handle.call(MethodId::EstimatePower, id, std::move(pw));
  ASSERT_TRUE(presp.ok());
  EXPECT_GT(presp.payload.readDouble(), 0.0);
  EXPECT_EQ(presp.payload.readU64(), 4u);  // billed for 4 recorded patterns
}

TEST(ProviderServer, EvalMatchesPublicPartFunctionalModel) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(6);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();
  const PublicPart pub = f.server.downloadPublicPart("MultFastLowPower", 6);
  ASSERT_TRUE(pub.hasFunctional());
  rmi::Sandbox sandbox;

  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const Word in = Word::fromUint(12, rng.next());
    rmi::Args ev;
    ev.addWord(in);
    auto evResp = handle.call(MethodId::EvalFunction, id, std::move(ev));
    ASSERT_TRUE(evResp.ok());
    // Private (gate-level) and public (behavioral) models must agree: the
    // provider's abstract model is faithful.
    EXPECT_EQ(evResp.payload.readWord(), pub.functional(in, sandbox));
  }
}

TEST(ProviderServer, FaultInterfaceServesListAndTables) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(3);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();

  auto flResp = handle.call(MethodId::GetFaultList, id, rmi::Args{});
  ASSERT_TRUE(flResp.ok());
  const std::uint32_t n = flResp.payload.readU32();
  EXPECT_GT(n, 0u);

  rmi::Args dt;
  dt.addWord(Word::fromUint(6, 0b110101));
  auto dtResp = handle.call(MethodId::GetDetectionTable, id, std::move(dt));
  ASSERT_TRUE(dtResp.ok());
  const auto table = fault::DetectionTable::deserialize(dtResp.payload);
  EXPECT_EQ(table.inputs().toUint(), 0b110101u);
  EXPECT_GT(table.rows().size(), 0u);
}

// --- idempotency keys, replay cache, restart and session recovery --------

TEST(ProviderServer, RetransmittedNonIdempotentCallIsAnsweredFromReplayCache) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(3);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();

  // Same request, same idempotency key, sent twice — the retransmission a
  // retrying channel produces when the first response was lost.
  rmi::Request req;
  req.session = handle.session();
  req.instance = id;
  req.method = MethodId::GetDetectionTable;
  req.args.addWord(Word::fromUint(6, 0b101100));
  req.idempotencyKey = f.channel.makeKey();

  auto first = f.channel.call(req);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.replayed);
  auto again = f.channel.call(req);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.replayed);

  // Byte-identical answer, and the work was billed exactly once.
  EXPECT_EQ(first.payload.bytes(), again.payload.bytes());
  EXPECT_DOUBLE_EQ(again.feeCents, first.feeCents);
  EXPECT_DOUBLE_EQ(f.server.sessionFeesCents(handle.session()), 0.05);
}

TEST(ProviderServer, RetransmittedInstantiateNeverCreatesASecondInstance) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Request req;
  req.session = handle.session();
  req.method = MethodId::Instantiate;
  req.component = "MultFastLowPower";
  req.args.addU64(4);
  req.idempotencyKey = f.channel.makeKey();

  auto first = f.channel.call(req);
  ASSERT_TRUE(first.ok());
  const rmi::InstanceId id = first.payload.readU64();
  auto again = f.channel.call(req);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.replayed);
  EXPECT_EQ(again.payload.readU64(), id);
  EXPECT_EQ(f.server.liveInstanceCount(), 1u);
}

TEST(ProviderServer, OpenSessionIsDeduplicatedByKey) {
  Fixture f;
  rmi::Request open;
  open.method = MethodId::OpenSession;
  open.idempotencyKey = f.channel.makeKey();
  auto first = f.channel.call(open);
  ASSERT_TRUE(first.ok());
  auto again = f.channel.call(open);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.replayed);
  // A duplicated OpenSession must not leak a second orphan session.
  EXPECT_EQ(again.payload.readU64(), first.payload.readU64());
}

TEST(ProviderServer, RestartForgetsSessionsButNeverReissuesIds) {
  Fixture f;
  ProviderHandle handle(f.channel);
  handle.setAutoRecover(false);
  rmi::Args args;
  args.addU64(4);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();
  const rmi::SessionId oldSession = handle.session();

  f.server.restart();
  EXPECT_EQ(f.server.liveInstanceCount(), 0u);
  EXPECT_EQ(handle.call(MethodId::GetFaultList, id, rmi::Args{}).status,
            rmi::Status::UnknownSession);

  // Post-restart ids continue monotonically: a client holding a stale id
  // must get UnknownSession/NotFound, never a stranger's fresh instance.
  ProviderHandle fresh(f.channel);
  EXPECT_NE(fresh.session(), oldSession);
  rmi::Args args2;
  args2.addU64(4);
  auto resp2 = fresh.call(MethodId::Instantiate, 0, std::move(args2),
                          "MultFastLowPower");
  ASSERT_TRUE(resp2.ok());
  EXPECT_GT(resp2.payload.readU64(), id);
}

TEST(ProviderServer, HandleRecoversSessionAndRebindsInstances) {
  Fixture f;
  ProviderHandle handle(f.channel);
  rmi::Args args;
  args.addU64(4);
  auto resp =
      handle.call(MethodId::Instantiate, 0, std::move(args), "MultFastLowPower");
  const rmi::InstanceId id = resp.payload.readU64();
  rmi::InstanceId rebound = 0;
  handle.recordInstantiation("MultFastLowPower", 4, id,
                             [&](rmi::InstanceId fresh) { rebound = fresh; });

  f.server.restart();

  // The next call through the handle hits UnknownSession, recovers the
  // session from the manifest, and transparently retries on the new ids.
  rmi::Args ev;
  ev.addWord(Word::fromUint(8, 0x21));
  auto evResp = handle.call(MethodId::EvalFunction, id, std::move(ev));
  ASSERT_TRUE(evResp.ok());
  EXPECT_EQ(handle.recoveries(), 1u);
  EXPECT_NE(rebound, 0u);
  EXPECT_NE(rebound, id);
  EXPECT_EQ(f.server.liveInstanceCount(), 1u);
  const SessionManifest m = handle.manifest();
  ASSERT_EQ(m.entries.size(), 1u);
  EXPECT_EQ(m.entries[0].instance, rebound);
}

}  // namespace
}  // namespace vcad::ip
