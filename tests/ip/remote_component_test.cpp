// The Figure 2 design, end to end: local registers around a remote
// multiplier, in both ER (estimator remote) and MR (fully remote) modes.
#include "ip/remote_component.hpp"

#include <gtest/gtest.h>

#include "core/sim_controller.hpp"
#include "fault/serial_sim.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"
#include "rtl/modules.hpp"

namespace vcad::ip {
namespace {

void registerMultiplier(ProviderServer& server) {
  IpComponentSpec spec;
  spec.name = "MultFastLowPower";
  spec.minWidth = 2;
  spec.maxWidth = 16;
  spec.functional = ModelLevel::Static;
  spec.power = ModelLevel::Dynamic;
  spec.timing = ModelLevel::Dynamic;
  spec.area = ModelLevel::Dynamic;
  spec.testability = ModelLevel::Dynamic;
  spec.staticPowerMw = 25.0;
  server.registerComponent(
      std::move(spec),
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeArrayMultiplier(static_cast<int>(w)));
      },
      [](std::uint64_t w) {
        PublicPart pub;
        pub.functional = [w](const Word& in, const rmi::Sandbox&) {
          const int width = static_cast<int>(w);
          const Word a = in.slice(0, width);
          const Word b = in.slice(width, width);
          if (!a.isFullyKnown() || !b.isFullyKnown()) {
            return Word::allX(2 * width);
          }
          return Word::fromUint(2 * width, a.toUint() * b.toUint());
        };
        return pub;
      });
}

/// The Figure 2 circuit: random inputs -> registers -> MULT -> output.
struct Figure2 {
  static constexpr int kWidth = 8;

  LogSink log;
  ProviderServer server{"provider.host.name", &log};
  rmi::RmiChannel channel{server, net::NetworkProfile::ideal(), &log};
  ProviderHandle provider{channel};

  Circuit c{"example"};
  Connector* A;
  Connector* AR;
  Connector* B;
  Connector* BR;
  Connector* O;
  RemoteComponent* mult = nullptr;
  rtl::PrimaryOutput* out = nullptr;

  explicit Figure2(RemoteConfig cfg, std::size_t patterns = 20) {
    registerMultiplier(server);
    A = &c.makeWord(kWidth, "A");
    AR = &c.makeWord(kWidth, "AR");
    B = &c.makeWord(kWidth, "B");
    BR = &c.makeWord(kWidth, "BR");
    O = &c.makeWord(2 * kWidth, "O");
    c.make<rtl::RandomPrimaryInput>("INA", kWidth, *A, patterns, 10, 1);
    c.make<rtl::Register>("REGA", *A, *AR);
    c.make<rtl::RandomPrimaryInput>("INB", kWidth, *B, patterns, 10, 2);
    c.make<rtl::Register>("REGB", *B, *BR);
    mult = &c.make<RemoteComponent>(
        "MULT", provider, "MultFastLowPower", kWidth,
        std::vector<std::pair<std::string, Connector*>>{{"a", AR}, {"b", BR}},
        std::vector<std::pair<std::string, Connector*>>{{"o", O}}, cfg);
    out = &c.make<rtl::PrimaryOutput>("OUT", *O);
  }
};

TEST(RemoteComponent, ErModeComputesLocallyAndMatchesProduct) {
  RemoteConfig cfg;
  cfg.mode = RemoteMode::EstimatorRemote;
  cfg.collectPower = false;
  Figure2 f(cfg);
  SimulationController sim(f.c);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};
  // Check every observed product against the register inputs.
  ASSERT_GT(f.out->sampleCount(ctx), 0u);
  // ER mode: no EvalFunction traffic at all (only the instantiate call).
  EXPECT_EQ(f.channel.stats().calls, 2u);  // OpenSession + Instantiate
  EXPECT_EQ(f.mult->remoteErrors(), 0u);
}

TEST(RemoteComponent, MrModeEvaluatesRemotelyWithSameResults) {
  RemoteConfig er;
  er.mode = RemoteMode::EstimatorRemote;
  er.collectPower = false;
  RemoteConfig mr;
  mr.mode = RemoteMode::FullyRemote;
  Figure2 ferr(er), fmr(mr);

  SimulationController simEr(ferr.c), simMr(fmr.c);
  simEr.start();
  simMr.start();
  SimContext ctxEr{simEr.scheduler(), nullptr}, ctxMr{simMr.scheduler(), nullptr};

  const auto& he = ferr.out->history(ctxEr);
  const auto& hm = fmr.out->history(ctxMr);
  ASSERT_EQ(he.size(), hm.size());
  for (size_t i = 0; i < he.size(); ++i) {
    EXPECT_EQ(he[i].value, hm[i].value) << i;
  }
  // MR mode marshals arguments on every event reaching the module.
  EXPECT_GT(fmr.channel.stats().calls, ferr.channel.stats().calls);
  EXPECT_EQ(fmr.mult->remoteErrors(), 0u);
}

TEST(RemoteComponent, BufferedPowerEstimationMatchesServerNetlist) {
  RemoteConfig cfg;
  cfg.mode = RemoteMode::EstimatorRemote;
  cfg.patternBufferCapacity = 5;
  cfg.nonblockingEstimation = false;
  Figure2 f(cfg, 30);
  SimulationController sim(f.c);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};
  const auto power = f.mult->finishPowerEstimation(ctx);
  ASSERT_TRUE(power.has_value());
  EXPECT_GT(*power, 0.0);
  EXPECT_EQ(f.mult->remoteErrors(), 0u);
  // Fees were charged per shipped pattern.
  EXPECT_GT(f.server.sessionFeesCents(f.provider.session()), 0.0);
}

TEST(RemoteComponent, NonblockingEstimationLandsOnOverlapAccount) {
  RemoteConfig cfg;
  cfg.mode = RemoteMode::EstimatorRemote;
  cfg.patternBufferCapacity = 5;
  cfg.nonblockingEstimation = true;
  Figure2 f(cfg, 30);
  SimulationController sim(f.c);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};
  const auto power = f.mult->finishPowerEstimation(ctx);
  ASSERT_TRUE(power.has_value());
  EXPECT_GT(f.channel.stats().asyncCalls, 0u);
}

TEST(RemoteComponent, MrModePowerUsesRemoteHistory) {
  RemoteConfig cfg;
  cfg.mode = RemoteMode::FullyRemote;
  Figure2 f(cfg, 15);
  SimulationController sim(f.c);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};
  const auto power = f.mult->finishPowerEstimation(ctx);
  ASSERT_TRUE(power.has_value());
  EXPECT_GT(*power, 0.0);
}

TEST(RemoteComponent, InstantiationFailureThrows) {
  LogSink log;
  ProviderServer server("p", &log);
  registerMultiplier(server);
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal());
  ProviderHandle provider(channel);
  Circuit c("c");
  auto& a = c.makeWord(32);
  auto& b = c.makeWord(32);
  auto& o = c.makeWord(64);
  EXPECT_THROW(
      c.make<RemoteComponent>(
          "MULT", provider, "MultFastLowPower", 32,  // width out of range
          std::vector<std::pair<std::string, Connector*>>{{"a", &a}, {"b", &b}},
          std::vector<std::pair<std::string, Connector*>>{{"o", &o}}),
      std::runtime_error);
}

TEST(RemoteComponent, SpecEstimatorsSelectableBySetup) {
  RemoteConfig cfg;
  cfg.collectPower = false;
  Figure2 f(cfg);
  const auto specs = f.provider.catalog();
  ASSERT_EQ(specs.size(), 1u);
  attachSpecEstimators(*f.mult, specs[0], f.mult);

  // Best accuracy -> the remote gate-level estimator.
  SetupController accurate;
  accurate.set(ParamKind::AvgPower, {Criterion::BestAccuracy});
  accurate.apply(f.c);
  EXPECT_EQ(f.mult->boundEstimator(accurate.id(), ParamKind::AvgPower)->name(),
            "gate-level-toggle");

  // Forbidding remote estimators falls back to the published constant.
  SetupController localOnly;
  EstimatorChoice choice{Criterion::BestAccuracy};
  choice.allowRemote = false;
  localOnly.set(ParamKind::AvgPower, choice);
  localOnly.apply(f.c);
  EXPECT_EQ(f.mult->boundEstimator(localOnly.id(), ParamKind::AvgPower)->name(),
            "constant");
}

TEST(RemoteFaultClient, MatchesLocalFaultAnalysis) {
  // A remote IP1 block must serve exactly the fault list and detection
  // tables a local analysis of the same netlist produces.
  LogSink log;
  ProviderServer server("p", &log);
  IpComponentSpec spec;
  spec.name = "IP1";
  spec.minWidth = 1;
  spec.maxWidth = 1;
  spec.functional = ModelLevel::Static;
  spec.testability = ModelLevel::Dynamic;
  server.registerComponent(
      std::move(spec),
      [](std::uint64_t) {
        return std::make_shared<const gate::Netlist>(gate::makeIp1HalfAdder());
      },
      [](std::uint64_t) {
        PublicPart pub;
        pub.functional = [](const Word& in, const rmi::Sandbox&) {
          Word out(2);
          out.setBit(0, logicXor(in.bit(0), in.bit(1)));
          out.setBit(1, logicAnd(in.bit(0), in.bit(1)));
          return out;
        };
        return pub;
      });
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal());
  ProviderHandle provider(channel);

  Circuit c("c");
  auto& i1 = c.makeBit();
  auto& i2 = c.makeBit();
  auto& o1 = c.makeBit();
  auto& o2 = c.makeBit();
  auto& comp = c.make<RemoteComponent>(
      "IP1", provider, "IP1", 1,
      std::vector<std::pair<std::string, Connector*>>{{"IIP1", &i1},
                                                      {"IIP2", &i2}},
      std::vector<std::pair<std::string, Connector*>>{{"OIP1", &o1},
                                                      {"OIP2", &o2}});
  RemoteFaultClient remote(comp);

  const auto nl = gate::makeIp1HalfAdder();
  const auto collapsed = fault::collapseAll(nl, true, false, false);
  EXPECT_EQ(remote.faultList(), fault::symbolicFaultList(nl, collapsed));

  gate::NetlistEvaluator eval(nl);
  for (unsigned v = 0; v < 4; ++v) {
    const Word in = Word::fromUint(2, v);
    const auto remoteTable = remote.detectionTable(in);
    const auto localTable = fault::buildDetectionTable(eval, collapsed, in);
    ASSERT_EQ(remoteTable.rows().size(), localTable.rows().size());
    for (size_t r = 0; r < localTable.rows().size(); ++r) {
      EXPECT_EQ(remoteTable.rows()[r].faultyOutput,
                localTable.rows()[r].faultyOutput);
      EXPECT_EQ(remoteTable.rows()[r].faults, localTable.rows()[r].faults);
    }
  }
}

}  // namespace
}  // namespace vcad::ip
