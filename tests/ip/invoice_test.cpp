#include <gtest/gtest.h>

#include "gate/generators.hpp"
#include "ip/remote_component.hpp"

namespace vcad::ip {
namespace {

TEST(Invoice, ItemizesPerMethodCharges) {
  LogSink log;
  ProviderServer server("p", &log);
  IpComponentSpec spec;
  spec.name = "MULT";
  spec.minWidth = 2;
  spec.maxWidth = 16;
  spec.power = ModelLevel::Dynamic;
  spec.testability = ModelLevel::Dynamic;
  spec.fees.instantiateCents = 5.0;
  spec.fees.perEvalCents = 0.01;
  spec.fees.perPowerPatternCents = 0.1;
  spec.fees.perDetectionTableCents = 0.05;
  server.registerComponent(
      spec,
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeArrayMultiplier(static_cast<int>(w)));
      },
      nullptr);
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal(), &log);
  ProviderHandle provider(channel);

  rmi::Args args;
  args.addU64(4);
  auto resp =
      provider.call(rmi::MethodId::Instantiate, 0, std::move(args), "MULT");
  const auto id = resp.payload.readU64();

  for (int i = 0; i < 3; ++i) {
    rmi::Args ev;
    ev.addWord(Word::fromUint(8, static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(provider.call(rmi::MethodId::EvalFunction, id, std::move(ev)).ok());
  }
  rmi::Args pw;
  pw.addWordVector({Word::fromUint(8, 1), Word::fromUint(8, 2)});
  ASSERT_TRUE(provider.call(rmi::MethodId::EstimatePower, id, std::move(pw)).ok());
  rmi::Args dt;
  dt.addWord(Word::fromUint(8, 0x2B));
  ASSERT_TRUE(
      provider.call(rmi::MethodId::GetDetectionTable, id, std::move(dt)).ok());

  const auto inv = server.invoice(provider.session());
  EXPECT_EQ(inv.session, provider.session());
  double expected = 0.0;
  std::uint64_t evalCalls = 0;
  for (const auto& item : inv.items) {
    expected += item.cents;
    if (item.method == rmi::MethodId::EvalFunction) evalCalls = item.calls;
  }
  EXPECT_EQ(evalCalls, 3u);
  EXPECT_DOUBLE_EQ(inv.totalCents, expected);
  EXPECT_DOUBLE_EQ(inv.totalCents, 5.0 + 3 * 0.01 + 2 * 0.1 + 0.05);
  EXPECT_DOUBLE_EQ(inv.totalCents,
                   server.sessionFeesCents(provider.session()));

  const std::string text = inv.render();
  EXPECT_NE(text.find("Instantiate"), std::string::npos);
  EXPECT_NE(text.find("EvalFunction"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

TEST(Invoice, UnknownSessionIsEmpty) {
  ProviderServer server("p");
  const auto inv = server.invoice(4242);
  EXPECT_TRUE(inv.items.empty());
  EXPECT_DOUBLE_EQ(inv.totalCents, 0.0);
}

TEST(Invoice, SessionsBilledIndependently) {
  LogSink log;
  ProviderServer server("p", &log);
  IpComponentSpec spec;
  spec.name = "A";
  spec.minWidth = 2;
  spec.maxWidth = 8;
  spec.fees.instantiateCents = 1.0;
  server.registerComponent(
      spec,
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeRippleCarryAdder(static_cast<int>(w)));
      },
      nullptr);
  rmi::RmiChannel channel(server, net::NetworkProfile::ideal());
  ProviderHandle alice(channel), bob(channel);
  for (auto* h : {&alice, &bob}) {
    rmi::Args args;
    args.addU64(4);
    ASSERT_TRUE(
        h->call(rmi::MethodId::Instantiate, 0, std::move(args), "A").ok());
  }
  rmi::Args args;
  args.addU64(4);
  ASSERT_TRUE(
      alice.call(rmi::MethodId::Instantiate, 0, std::move(args), "A").ok());
  EXPECT_DOUBLE_EQ(server.invoice(alice.session()).totalCents, 2.0);
  EXPECT_DOUBLE_EQ(server.invoice(bob.session()).totalCents, 1.0);
}

}  // namespace
}  // namespace vcad::ip
