// Full-stack integration: everything the library offers, in one scenario.
//
// Two providers (one combinational multiplier IP, one sequential counter
// IP). The user browses catalogs, negotiates a power estimator, builds a
// mixed design (behavioral source + registers + remote multiplier + local
// gate logic), simulates with buffered remote power estimation, runs a
// virtual fault campaign against the remote combinational block, runs the
// sequential shadow-machine campaign against the counter IP, dumps a VCD,
// and settles both invoices. Every cross-module seam is exercised.
#include <gtest/gtest.h>

#include <sstream>

#include "fault/seq_fault.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"
#include "ip/negotiation.hpp"
#include "ip/remote_component.hpp"
#include "rtl/behavioral.hpp"
#include "rtl/vcd.hpp"

namespace vcad {
namespace {

ip::PublicPart multiplierPublicPart(std::uint64_t w) {
  ip::PublicPart pub;
  pub.functional = [w](const Word& in, const rmi::Sandbox&) {
    const int width = static_cast<int>(w);
    const Word a = in.slice(0, width);
    const Word b = in.slice(width, width);
    if (!a.isFullyKnown() || !b.isFullyKnown()) return Word::allX(2 * width);
    return Word::fromUint(2 * width, a.toUint() * b.toUint());
  };
  return pub;
}

TEST(FullStack, MarketplaceSimulationFaultsAndBilling) {
  const int w = 4;
  LogSink log;

  // --- providers ---------------------------------------------------------
  ip::ProviderServer silicon("fast-silicon.example", &log);
  {
    ip::IpComponentSpec spec;
    spec.name = "MULT";
    spec.minWidth = 2;
    spec.maxWidth = 16;
    spec.functional = ip::ModelLevel::Static;
    spec.power = ip::ModelLevel::Dynamic;
    spec.testability = ip::ModelLevel::Dynamic;
    spec.staticPowerMw = 10.0;
    spec.fees.perPowerPatternCents = 0.1;
    spec.fees.perDetectionTableCents = 0.05;
    silicon.registerComponent(
        spec,
        [](std::uint64_t width) {
          return std::make_shared<const gate::Netlist>(
              gate::makeArrayMultiplier(static_cast<int>(width)));
        },
        multiplierPublicPart);
  }
  ip::ProviderServer cores("seq-cores.example", &log);
  {
    ip::IpComponentSpec spec;
    spec.name = "COUNTER";
    spec.minWidth = 2;
    spec.maxWidth = 16;
    spec.testability = ip::ModelLevel::Dynamic;
    spec.fees.perEvalCents = 0.01;
    cores.registerSequentialComponent(spec, [](std::uint64_t width) {
      return gate::makeCounter(static_cast<int>(width));
    });
  }

  rmi::RmiChannel ch1(silicon, net::NetworkProfile::lan(), &log);
  rmi::RmiChannel ch2(cores, net::NetworkProfile::wan(), &log);
  ip::ProviderHandle h1(ch1), h2(ch2);

  // --- catalog + negotiation --------------------------------------------
  ASSERT_EQ(h1.catalog().size(), 1u);
  ASSERT_EQ(h2.catalog().at(0).name, "COUNTER");

  // --- the design --------------------------------------------------------
  Circuit c("system");
  auto& A = c.makeWord(w, "A");
  auto& B = c.makeWord(w, "B");
  auto& P = c.makeWord(2 * w, "P");
  // Behavioral source driving both operands with a deterministic sweep.
  c.make<rtl::BehavioralProcess>(
      "src", std::vector<std::pair<std::string, Connector*>>{},
      std::vector<std::pair<std::string, Connector*>>{{"a", &A}, {"b", &B}},
      [](rtl::BehavioralProcess::Activation& act) {
        Word& t = act.memory(0, 8);
        const std::uint64_t n = t.isFullyKnown() ? t.toUint() : 0;
        if (n >= 20) {
          act.stopPeriodic();
          return;
        }
        t = Word::fromUint(8, n + 1);
        act.drive(0, Word::fromUint(4, n % 16));
        act.drive(1, Word::fromUint(4, (3 * n + 1) % 16));
      },
      /*period=*/10);
  ip::RemoteConfig cfg;
  cfg.patternBufferCapacity = 5;
  cfg.nonblockingEstimation = false;
  auto& mult = c.make<ip::RemoteComponent>(
      "MULT", h1, "MULT", w,
      std::vector<std::pair<std::string, Connector*>>{{"a", &A}, {"b", &B}},
      std::vector<std::pair<std::string, Connector*>>{{"o", &P}}, cfg);
  auto& out = c.make<rtl::PrimaryOutput>("OUT", P);

  // Negotiate: demand 15% accuracy, accept the counter-offer fee.
  auto round = ip::negotiateEstimator(h1, mult.instanceId(),
                                      ParamKind::AvgPower, 0.0, 15.0);
  ASSERT_EQ(round.outcome, ip::NegotiationResult::Outcome::CounterOffer);
  round = ip::negotiateEstimator(h1, mult.instanceId(), ParamKind::AvgPower,
                                 round.offer.costPerUseCents, 15.0);
  ASSERT_EQ(round.outcome, ip::NegotiationResult::Outcome::Accepted);
  EXPECT_EQ(round.offer.name, "gate-level-toggle");

  // --- simulate ----------------------------------------------------------
  SimulationController sim(c);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};
  EXPECT_EQ(out.sampleCount(ctx), 20u);
  // Functional check: every observed product matches the sweep.
  const auto& hist = out.history(ctx);
  for (std::size_t n = 0; n < hist.size(); ++n) {
    EXPECT_EQ(hist[n].value.toUint(), (n % 16) * ((3 * n + 1) % 16)) << n;
  }
  const auto power = mult.finishPowerEstimation(ctx);
  ASSERT_TRUE(power.has_value());
  EXPECT_GT(*power, 0.0);
  EXPECT_EQ(mult.remoteErrors(), 0u);

  // --- VCD dump ---------------------------------------------------------
  rtl::VcdWriter vcd;
  vcd.addTrack("product", out, ctx);
  std::ostringstream wave;
  vcd.write(wave);
  EXPECT_NE(wave.str().find("$var wire 8"), std::string::npos);

  // --- virtual fault campaign against the remote multiplier --------------
  ip::RemoteFaultClient multFaults(mult);
  const auto faultList = multFaults.faultList();
  EXPECT_GT(faultList.size(), 20u);
  const auto table = multFaults.detectionTable(Word::fromUint(2 * w, 0xA7));
  EXPECT_GT(table.rows().size(), 0u);

  // --- sequential campaign against the counter IP -------------------------
  ip::RemoteSeqFaultClient counter(h2, "COUNTER", 4);
  std::vector<Word> enables(12, Word::fromUint(1, 1));
  const auto seqRes = fault::runSeqCampaign(counter, enables);
  EXPECT_GT(seqRes.coverage(), 0.5);

  // --- billing ------------------------------------------------------------
  const auto inv1 = silicon.invoice(h1.session());
  const auto inv2 = cores.invoice(h2.session());
  EXPECT_GT(inv1.totalCents, 0.0);
  EXPECT_GT(inv2.totalCents, 0.0);
  EXPECT_DOUBLE_EQ(inv1.totalCents, silicon.sessionFeesCents(h1.session()));
  // Channel fee accounting agrees with the providers' ledgers.
  EXPECT_DOUBLE_EQ(ch1.stats().feesCents, inv1.totalCents);
  EXPECT_DOUBLE_EQ(ch2.stats().feesCents, inv2.totalCents);
  // Nothing tripped the security machinery.
  EXPECT_EQ(ch1.stats().securityRejections, 0u);
  EXPECT_EQ(log.count(Severity::Security), 0u);
}

}  // namespace
}  // namespace vcad
