// Concurrency stress for the observability layer, written to run clean
// under TSan: many writer threads hammer one Registry / Tracer while a
// reader snapshots concurrently, then the final aggregate must be EXACT —
// shard retirement on thread exit must not lose or double-count a single
// increment.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vcad::obs {
namespace {

constexpr std::size_t kThreads = 10;  // the suite's bar is >= 8
constexpr std::uint64_t kIters = 20000;

TEST(RegistryStress, ConcurrentWritersAggregateExactlyAcrossRetirement) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  Registry reg;  // private instance: isolated from the global registry
  const Registry::MetricId hits = reg.counter("stress.hits");
  const Registry::MetricId bulk = reg.counter("stress.bulk");
  const Registry::MetricId fees = reg.doubleCounter("stress.fees");
  const Registry::MetricId high = reg.gauge("stress.highWater");
  const Registry::MetricId wall = reg.histogram("stress.wallSec");

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        reg.add(hits);
        reg.add(bulk, 3);
        // 0.5 sums exactly in binary at this scale, so the double ledger
        // has ONE correct answer regardless of shard merge order.
        reg.addDouble(fees, 0.5);
        reg.maxGauge(high, static_cast<std::int64_t>(t * kIters + i));
        reg.observe(wall, 1e-3);
      }
    });
  }
  for (std::thread& th : writers) th.join();

  // Writers have exited, so every shard above was retired; the totals now
  // live in the merged retired store and must be exact.
  const Registry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterOr("stress.hits"), kThreads * kIters);
  EXPECT_EQ(snap.counterOr("stress.bulk"), kThreads * kIters * 3);
  EXPECT_EQ(snap.doubleOr("stress.fees"),
            static_cast<double>(kThreads * kIters) * 0.5);
  EXPECT_EQ(snap.gaugeOr("stress.highWater"),
            static_cast<std::int64_t>(kThreads * kIters - 1));
  ASSERT_TRUE(snap.histograms.count("stress.wallSec") != 0);
  const Registry::HistogramData& h = snap.histograms.at("stress.wallSec");
  EXPECT_EQ(h.count, kThreads * kIters);
  // Identical observations all land in one bucket.
  EXPECT_EQ(h.buckets.at(Registry::bucketFor(1e-3)), kThreads * kIters);
  EXPECT_NEAR(h.sum, static_cast<double>(kThreads * kIters) * 1e-3,
              kThreads * kIters * 1e-12);
}

TEST(RegistryStress, SnapshottingWhileWritersRunIsMonotonicAndRaceFree) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  Registry reg;
  const Registry::MetricId hits = reg.counter("stress.live");

  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kIters; ++i) reg.add(hits);
    });
  }

  // A monotonic counter observed from one sequential reader can never
  // appear to run backwards, no matter how the relaxed shard adds land.
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const std::uint64_t now = reg.snapshot().counterOr("stress.live");
      EXPECT_GE(now, last);
      last = now;
    }
  });

  for (std::thread& th : writers) th.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(reg.snapshot().counterOr("stress.live"), kThreads * kIters);
}

TEST(RegistryStress, TracerSurvivesConcurrentRecordAndCollect) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  Tracer tracer;
  tracer.setEnabled(true);
  constexpr std::size_t kWriters = 8;
  constexpr std::uint64_t kEvents = 5000;  // < kRingCapacity: zero drops

  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        tracer.instant("stress.tick", "test",
                       {{"i", static_cast<double>(i)}});
      }
    });
  }
  // Exercise every reader path concurrently with recording and with ring
  // retirement as writer threads exit.
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)tracer.collect();
      (void)tracer.toChromeJson();
      (void)tracer.lastEvents(64);
      (void)tracer.droppedEvents();
    }
  });

  for (std::thread& th : writers) th.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  const std::vector<TraceEvent> events = tracer.collect();
  EXPECT_EQ(events.size(), kWriters * kEvents);
  EXPECT_EQ(tracer.droppedEvents(), 0u);

  // Per thread the retained stream is gap-free and its clock never steps
  // backwards (instants are recorded at their own timestamp).
  std::map<std::uint32_t, std::vector<TraceEvent>> byTid;
  for (const TraceEvent& e : events) byTid[e.tid].push_back(e);
  EXPECT_EQ(byTid.size(), kWriters);
  for (auto& [tid, tev] : byTid) {
    std::sort(tev.begin(), tev.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.seq < b.seq;
              });
    ASSERT_EQ(tev.size(), kEvents) << "tid " << tid;
    for (std::size_t i = 0; i < tev.size(); ++i) {
      EXPECT_EQ(tev[i].seq, i) << "tid " << tid;
      if (i > 0) {
        EXPECT_GE(tev[i].tsNs, tev[i - 1].tsNs) << "tid " << tid;
      }
    }
  }
}

}  // namespace
}  // namespace vcad::obs
