// The observability layer's two non-negotiables, as tests:
//
//  1. Tracing is read-only. A chaos campaign run with the tracer on must
//     produce bit-identical deterministic outcomes (coverage, ledgers,
//     fault schedules) to the same campaign with the tracer off — spans may
//     observe the simulation, never steer it.
//  2. Tracing is cheap. Non-verbose span recording must cost < 5% wall time
//     on the mult16 serial campaign. Wall-clock assertions are flaky on
//     loaded CI hosts, so the timing gate only arms when VCAD_PERF_ASSERT
//     is set; the determinism half always runs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "fault/block_design.hpp"
#include "fault/fault_client.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"
#include "obs/trace.hpp"
#include "rmi/chaos_harness.hpp"

namespace vcad::obs {
namespace {

using chaos::ChaosOutcome;
using chaos::runChaosCampaign;

TEST(ObsOverhead, TracingDoesNotChangeDeterministicOutcomes) {
  // Lossy profile so the run exercises retries, duplicate suppression, and
  // corrupted-frame drops — the paths where a tracing side effect on frame
  // bytes or timing would surface as a diverged fault schedule.
  const ChaosOutcome off = runChaosCampaign(
      net::FaultProfile::lossy(), 7, 6, 0, 0, 1, nullptr, 0, /*traced=*/false);
  const ChaosOutcome on = runChaosCampaign(
      net::FaultProfile::lossy(), 7, 6, 0, 0, 1, nullptr, 0, /*traced=*/true);

  // Campaign outcome.
  EXPECT_EQ(on.result.faultList, off.result.faultList);
  EXPECT_EQ(on.result.detected, off.result.detected);
  EXPECT_EQ(on.result.detectedAfterPattern, off.result.detectedAfterPattern);
  EXPECT_EQ(on.result.detectionTablesRequested,
            off.result.detectionTablesRequested);
  EXPECT_EQ(on.result.tableFetchRoundTrips, off.result.tableFetchRoundTrips);
  EXPECT_EQ(on.result.tableCacheHits, off.result.tableCacheHits);
  EXPECT_EQ(on.result.injections, off.result.injections);

  // Channel ledger (deterministic fields only: the wall/CPU seconds are
  // measured off the host clock and differ between any two runs).
  EXPECT_EQ(on.stats.calls, off.stats.calls);
  EXPECT_EQ(on.stats.blockedCalls, off.stats.blockedCalls);
  EXPECT_EQ(on.stats.asyncCalls, off.stats.asyncCalls);
  EXPECT_EQ(on.stats.securityRejections, off.stats.securityRejections);
  EXPECT_EQ(on.stats.bytesSent, off.stats.bytesSent);
  EXPECT_EQ(on.stats.bytesReceived, off.stats.bytesReceived);
  EXPECT_EQ(on.stats.retries, off.stats.retries);
  EXPECT_EQ(on.stats.timeouts, off.stats.timeouts);
  EXPECT_EQ(on.stats.duplicatesSuppressed, off.stats.duplicatesSuppressed);
  EXPECT_EQ(on.stats.corruptedFramesDropped, off.stats.corruptedFramesDropped);
  EXPECT_EQ(on.stats.transportFailures, off.stats.transportFailures);
  EXPECT_EQ(on.stats.networkSec, off.stats.networkSec);    // modelled, exact
  EXPECT_EQ(on.stats.feesCents, off.stats.feesCents);      // ledger, exact
  EXPECT_EQ(on.providerFeesCents, off.providerFeesCents);

  // The transport injected the exact same faults: plans are pure functions
  // of seed/key/attempt, and traced frames are byte-count identical.
  EXPECT_EQ(on.transport.attempts, off.transport.attempts);
  EXPECT_EQ(on.transport.droppedRequests, off.transport.droppedRequests);
  EXPECT_EQ(on.transport.droppedResponses, off.transport.droppedResponses);
  EXPECT_EQ(on.transport.duplicatedRequests, off.transport.duplicatedRequests);
  EXPECT_EQ(on.transport.corruptedRequests, off.transport.corruptedRequests);
  EXPECT_EQ(on.transport.corruptedResponses,
            off.transport.corruptedResponses);
  EXPECT_EQ(on.transport.reorders, off.transport.reorders);
  EXPECT_EQ(on.transport.stalls, off.transport.stalls);
  EXPECT_EQ(on.remoteErrors, off.remoteErrors);
  EXPECT_EQ(on.recoveries, off.recoveries);
}

std::shared_ptr<const gate::Netlist> share(gate::Netlist nl) {
  return std::make_shared<const gate::Netlist>(std::move(nl));
}

/// The bench's mult16 scenario: one 8-bit array multiplier block whose own
/// collapsed fault list drives the campaign.
fault::BlockDesign makeMultCampaign(int w) {
  fault::BlockDesign d;
  const int pis = 2 * w;
  for (int i = 0; i < pis; ++i) d.addPrimaryInput("pi" + std::to_string(i));
  const int m = d.addBlock("MULT", share(gate::makeArrayMultiplier(w)));
  for (int i = 0; i < pis; ++i) d.connect({-1, i}, m, i);
  for (int i = 0; i < 2 * w; ++i) d.markPrimaryOutput(m, i);
  return d;
}

std::vector<Word> randomPatterns(int width, int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(Word::fromUint(width, rng.next()));
  }
  return out;
}

double wallOf(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

TEST(ObsOverhead, SpanOverheadUnderFivePercentOnMult16Campaign) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  if (std::getenv("VCAD_PERF_ASSERT") == nullptr) {
    GTEST_SKIP() << "set VCAD_PERF_ASSERT=1 to arm the wall-clock gate";
  }

  const fault::BlockDesign d = makeMultCampaign(8);
  auto inst = d.instantiate();
  fault::LocalFaultBlock client(*inst.blockModules[0], /*dominance=*/true,
                                fault::FaultScope{false, true});
  std::vector<fault::FaultClient*> comps{&client};
  // Enough patterns that one campaign run takes tens of milliseconds —
  // a 5% margin on a too-small run is inside scheduler jitter.
  const auto pats = randomPatterns(d.primaryInputCount(), 16, 0xC0FFEE ^ 8);

  Tracer& tracer = Tracer::global();
  const bool wasEnabled = tracer.enabled();
  auto runOnce = [&] {
    fault::VirtualFaultSimulator sim(*inst.circuit, comps, inst.piConns,
                                     inst.poConns);
    const fault::CampaignResult res = sim.runPacked(pats);
    ASSERT_GT(res.injections, 0u);
  };
  // Min-of-5 on each side filters scheduler noise; warm-up run first so
  // neither side pays one-time costs (fault-list build, allocator warmup).
  runOnce();
  auto minOf5 = [&](bool traced) {
    double best = 1e300;
    for (int i = 0; i < 5; ++i) {
      tracer.clear();
      tracer.setEnabled(traced);
      const double t = wallOf(runOnce);
      tracer.setEnabled(false);
      if (t < best) best = t;
    }
    return best;
  };

  const double untraced = minOf5(false);
  const double traced = minOf5(true);
  tracer.setEnabled(wasEnabled);
  tracer.clear();

  EXPECT_LE(traced, untraced * 1.05)
      << "untraced " << untraced << "s vs traced " << traced << "s";
}

}  // namespace
}  // namespace vcad::obs
