// Golden-trace suite: the observability layer's output contract. One
// deterministic chaos campaign (remote multiplier IP over an RmiChannel,
// driving a fault-free scheduler plus injection schedulers) is run under
// tracing, and the resulting event stream must satisfy the span grammar:
// valid Chrome trace-event JSON, per-thread timestamp monotonicity, proper
// span nesting, and client/provider flow stitching across the
// administrative-domain boundary. The metrics registry must mirror the
// legacy ChannelStats / CampaignResult ledgers bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rmi/chaos_harness.hpp"

namespace vcad::obs {
namespace {

using chaos::ChaosOutcome;
using chaos::ChaosRig;
using chaos::runChaosCampaign;

// --- a minimal validating JSON parser --------------------------------------
// Just enough JSON to verify the Chrome trace-event schema structurally; a
// parse error throws with the byte offset.

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool has(const std::string& key) const { return object.count(key) != 0; }
  const Json& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = parseValue();
    skipWs();
    if (pos_ != s_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error(why + " at byte " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skipWs();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json parseValue() {
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return parseString();
      case 't':
      case 'f':
        return parseBool();
      case 'n':
        return parseNull();
      default:
        return parseNumber();
    }
  }

  Json parseObject() {
    Json v;
    v.kind = Json::Kind::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      Json key = parseString();
      expect(':');
      v.object.emplace(key.str, parseValue());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parseArray() {
    Json v;
    v.kind = Json::Kind::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json parseString() {
    Json v;
    v.kind = Json::Kind::String;
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("dangling escape");
        const char esc = s_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            v.str.push_back(esc);
            break;
          case 'n':
            v.str.push_back('\n');
            break;
          case 't':
            v.str.push_back('\t');
            break;
          case 'r':
            v.str.push_back('\r');
            break;
          case 'b':
          case 'f':
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            pos_ += 4;  // validated as hex below
            for (std::size_t i = pos_ - 4; i < pos_; ++i) {
              if (std::isxdigit(static_cast<unsigned char>(s_[i])) == 0) {
                fail("bad \\u escape");
              }
            }
            v.str.push_back('?');
            break;
          }
          default:
            fail("bad escape");
        }
        continue;
      }
      v.str.push_back(c);
    }
  }

  Json parseBool() {
    Json v;
    v.kind = Json::Kind::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Json parseNull() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return Json{};
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.kind = Json::Kind::Number;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- event-stream helpers --------------------------------------------------

bool isComplete(const TraceEvent& e) {
  return e.phase == TraceEvent::Phase::Complete;
}

std::string nameOf(const TraceEvent& e) { return e.name; }

/// All Complete spans whose name starts with `prefix`.
std::vector<TraceEvent> spansWithPrefix(const std::vector<TraceEvent>& events,
                                        const std::string& prefix) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (isComplete(e) && nameOf(e).rfind(prefix, 0) == 0) out.push_back(e);
  }
  return out;
}

/// [ts, ts+dur] containment with shared endpoints allowed.
bool contains(const TraceEvent& outer, const TraceEvent& inner) {
  return outer.tsNs <= inner.tsNs &&
         outer.tsNs + outer.durNs >= inner.tsNs + inner.durNs;
}

ChaosOutcome runTracedIdealCampaign() {
  return runChaosCampaign(net::FaultProfile::none(), 1);
}

// --- the suite -------------------------------------------------------------

TEST(GoldenTrace, ChaosCampaignEmitsValidChromeTraceJson) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  (void)runTracedIdealCampaign();
  const std::string json = Tracer::global().toChromeJson();

  Json root;
  ASSERT_NO_THROW(root = JsonParser(json).parse()) << json.substr(0, 400);
  ASSERT_EQ(root.kind, Json::Kind::Object);
  ASSERT_TRUE(root.has("traceEvents"));
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::Array);
  ASSERT_FALSE(events.array.empty());

  const std::set<std::string> phases{"X", "i", "s", "f"};
  for (const Json& ev : events.array) {
    ASSERT_EQ(ev.kind, Json::Kind::Object);
    ASSERT_TRUE(ev.has("name"));
    EXPECT_EQ(ev.at("name").kind, Json::Kind::String);
    EXPECT_FALSE(ev.at("name").str.empty());
    ASSERT_TRUE(ev.has("cat"));
    ASSERT_TRUE(ev.has("ph"));
    const std::string ph = ev.at("ph").str;
    EXPECT_TRUE(phases.count(ph) != 0) << ph;
    ASSERT_TRUE(ev.has("pid"));
    EXPECT_EQ(ev.at("pid").number, 1.0);
    ASSERT_TRUE(ev.has("tid"));
    EXPECT_EQ(ev.at("tid").kind, Json::Kind::Number);
    ASSERT_TRUE(ev.has("ts"));
    EXPECT_GE(ev.at("ts").number, 0.0);
    if (ph == "X") {
      ASSERT_TRUE(ev.has("dur"));
      EXPECT_GE(ev.at("dur").number, 0.0);
    }
    if (ph == "i") {
      ASSERT_TRUE(ev.has("s"));  // instant scope
      EXPECT_EQ(ev.at("s").str, "t");
    }
    if (ph == "s" || ph == "f") {
      // Flow events are useless without an id to pair on.
      ASSERT_TRUE(ev.has("id"));
      EXPECT_EQ(ev.at("id").str.rfind("0x", 0), 0u);
    }
    if (ph == "f") {
      ASSERT_TRUE(ev.has("bp"));  // bind to the enclosing slice
      EXPECT_EQ(ev.at("bp").str, "e");
    }
    ASSERT_TRUE(ev.has("args"));
    EXPECT_EQ(ev.at("args").kind, Json::Kind::Object);
  }
}

TEST(GoldenTrace, TimestampsAreMonotonicPerThreadAndSpansNestProperly) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  (void)runTracedIdealCampaign();
  const std::vector<TraceEvent> events = Tracer::global().collect();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(Tracer::global().droppedEvents(), 0u)
      << "campaign must fit the ring; drops would invalidate the grammar";

  // Per thread, record order (seq) must agree with the clock.
  std::map<std::uint32_t, std::vector<TraceEvent>> byTid;
  for (const TraceEvent& e : events) byTid[e.tid].push_back(e);
  for (auto& [tid, tev] : byTid) {
    std::sort(tev.begin(), tev.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.seq < b.seq;
              });
    for (std::size_t i = 1; i < tev.size(); ++i) {
      EXPECT_EQ(tev[i].seq, tev[i - 1].seq + 1) << "tid " << tid;
      // A Complete event is stamped with its START time but recorded at its
      // end, so it may carry an older ts than its predecessor; every other
      // phase is recorded at its own timestamp and must not step backwards.
      if (tev[i].phase != TraceEvent::Phase::Complete) {
        EXPECT_GE(tev[i].tsNs, tev[i - 1].tsNs)
            << "tid " << tid << " seq " << tev[i].seq << " (" << tev[i].name
            << " after " << tev[i - 1].name << ")";
      }
    }
  }

  // Spans on one thread either nest or are disjoint — never interleave.
  for (const auto& [tid, tev] : byTid) {
    std::vector<TraceEvent> spans;
    for (const TraceEvent& e : tev) {
      if (isComplete(e)) spans.push_back(e);
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const TraceEvent& a = spans[i];
        const TraceEvent& b = spans[j];
        const bool overlap = a.tsNs < b.tsNs + b.durNs &&
                             b.tsNs < a.tsNs + a.durNs;
        if (!overlap) continue;
        EXPECT_TRUE(contains(a, b) || contains(b, a))
            << "tid " << tid << ": spans " << a.name << " and " << b.name
            << " partially overlap";
      }
    }
  }

  // The expected span taxonomy showed up: the campaign root, its per-pattern
  // children, the client RMI spans, and the provider's adopted spans.
  const auto campaignSpans = spansWithPrefix(events, "campaign.serial");
  ASSERT_EQ(campaignSpans.size(), 1u);
  const TraceEvent root = campaignSpans[0];
  const auto patternSpans = spansWithPrefix(events, "campaign.pattern");
  EXPECT_GT(patternSpans.size(), 0u);
  for (const TraceEvent& p : patternSpans) {
    ASSERT_EQ(p.tid, root.tid);
    EXPECT_TRUE(contains(root, p)) << "pattern span escapes the campaign";
  }
  const auto tableSpans = spansWithPrefix(events, "rmi.GetDetectionTable");
  EXPECT_GT(tableSpans.size(), 0u);
  for (const TraceEvent& t : tableSpans) {
    EXPECT_TRUE(contains(root, t)) << "mid-campaign RMI escapes the campaign";
  }
  EXPECT_GT(spansWithPrefix(events, "provider.dispatch").size(), 0u);
}

TEST(GoldenTrace, ClientAndProviderSpansStitchIntoOneFlow) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  (void)runTracedIdealCampaign();
  const std::vector<TraceEvent> events = Tracer::global().collect();

  // Every flow-finish pairs with an earlier (or simultaneous) flow-start of
  // the same id; a finish without its start would render unparented.
  std::map<std::uint64_t, std::uint64_t> flowStartTs;
  std::size_t finishes = 0;
  for (const TraceEvent& e : events) {
    if (e.phase == TraceEvent::Phase::FlowBegin) {
      ASSERT_NE(e.id, 0u);
      auto it = flowStartTs.find(e.id);
      if (it == flowStartTs.end() || e.tsNs < it->second) {
        flowStartTs[e.id] = e.tsNs;
      }
    }
  }
  for (const TraceEvent& e : events) {
    if (e.phase != TraceEvent::Phase::FlowEnd) continue;
    ++finishes;
    auto it = flowStartTs.find(e.id);
    ASSERT_TRUE(it != flowStartTs.end()) << "orphan flow finish id " << e.id;
    EXPECT_LE(it->second, e.tsNs);
  }
  EXPECT_GT(finishes, 0u);

  // Each provider.dispatch span adopted the id of exactly one client-side
  // rmi.* span: the single stitched cross-domain trace of the acceptance
  // criteria.
  std::set<std::uint64_t> clientIds;
  for (const TraceEvent& e : spansWithPrefix(events, "rmi.")) {
    if (e.id != 0) clientIds.insert(e.id);
  }
  const auto dispatches = spansWithPrefix(events, "provider.dispatch");
  ASSERT_GT(dispatches.size(), 0u);
  for (const TraceEvent& d : dispatches) {
    ASSERT_NE(d.id, 0u) << "untraced dispatch inside a traced campaign";
    EXPECT_TRUE(clientIds.count(d.id) != 0)
        << "provider span id " << d.id << " has no originating client span";
  }
}

TEST(GoldenTrace, AsyncCallStitchesAcrossThreads) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.setEnabled(true);
  {
    ChaosRig rig(net::FaultProfile::none(), 1);
    tracer.instant("test.mainThreadMarker", "test");
    auto future =
        rig.provider->callAsync(rmi::MethodId::GetCatalog, 0, rmi::Args{});
    const rmi::Response resp = future.get();
    EXPECT_EQ(resp.status, rmi::Status::Ok);
  }
  tracer.setEnabled(false);

  const std::vector<TraceEvent> events = tracer.collect();
  std::uint32_t mainTid = 0;
  bool haveMainTid = false;
  for (const TraceEvent& e : events) {
    if (nameOf(e) == "test.mainThreadMarker") {
      mainTid = e.tid;
      haveMainTid = true;
    }
  }
  ASSERT_TRUE(haveMainTid);

  // The async call's client span ran off the main thread, and its provider
  // child adopted the same flow id — a genuinely cross-thread stitch.
  TraceEvent asyncSpan;
  bool haveAsyncSpan = false;
  for (const TraceEvent& e : spansWithPrefix(events, "rmi.GetCatalog")) {
    if (e.tid != mainTid) {
      asyncSpan = e;
      haveAsyncSpan = true;
    }
  }
  ASSERT_TRUE(haveAsyncSpan) << "callAsync span did not leave the main tid";
  ASSERT_NE(asyncSpan.id, 0u);

  bool stitched = false;
  for (const TraceEvent& d : spansWithPrefix(events, "provider.dispatch")) {
    if (d.id == asyncSpan.id) stitched = true;
  }
  EXPECT_TRUE(stitched);

  bool flowBegin = false;
  bool flowEnd = false;
  for (const TraceEvent& e : events) {
    if (e.id != asyncSpan.id) continue;
    if (e.phase == TraceEvent::Phase::FlowBegin) flowBegin = true;
    if (e.phase == TraceEvent::Phase::FlowEnd) flowEnd = true;
  }
  EXPECT_TRUE(flowBegin);
  EXPECT_TRUE(flowEnd);
}

TEST(GoldenTrace, RegistryMirrorsChannelAndCampaignLedgersBitForBit) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  Registry::global().reset();
  const ChaosOutcome out = runTracedIdealCampaign();
  const Registry::Snapshot snap = Registry::global().snapshot();

  // Channel ledger: every ChannelStats field the registry mirrors must be
  // EXACTLY the struct's value — counters and doubles alike (the mirror
  // adds the same deltas in the same order on the same thread).
  EXPECT_EQ(snap.counterOr("rmi.calls"), out.stats.calls);
  EXPECT_EQ(snap.counterOr("rmi.blockedCalls"), out.stats.blockedCalls);
  EXPECT_EQ(snap.counterOr("rmi.asyncCalls"), out.stats.asyncCalls);
  EXPECT_EQ(snap.counterOr("rmi.securityRejections"),
            out.stats.securityRejections);
  EXPECT_EQ(snap.counterOr("rmi.bytesSent"), out.stats.bytesSent);
  EXPECT_EQ(snap.counterOr("rmi.bytesReceived"), out.stats.bytesReceived);
  EXPECT_EQ(snap.counterOr("rmi.retries"), out.stats.retries);
  EXPECT_EQ(snap.counterOr("rmi.timeouts"), out.stats.timeouts);
  EXPECT_EQ(snap.counterOr("rmi.duplicatesSuppressed"),
            out.stats.duplicatesSuppressed);
  EXPECT_EQ(snap.counterOr("rmi.corruptedFramesDropped"),
            out.stats.corruptedFramesDropped);
  EXPECT_EQ(snap.counterOr("rmi.transportFailures"),
            out.stats.transportFailures);
  EXPECT_EQ(snap.doubleOr("rmi.feesCents"), out.stats.feesCents);
  EXPECT_EQ(snap.doubleOr("rmi.networkSec"), out.stats.networkSec);
  EXPECT_EQ(snap.doubleOr("rmi.blockingWallSec"), out.stats.blockingWallSec);
  EXPECT_EQ(snap.doubleOr("rmi.nonblockingWallSec"),
            out.stats.nonblockingWallSec);
  EXPECT_EQ(snap.doubleOr("rmi.serverCpuSec"), out.stats.serverCpuSec);

  // One histogram observation per completed call.
  ASSERT_TRUE(snap.histograms.count("rmi.callWallSec") != 0);
  EXPECT_EQ(snap.histograms.at("rmi.callWallSec").count, out.stats.calls);

  // Provider ledger: all charges of the run belong to the one session.
  EXPECT_EQ(snap.doubleOr("provider.feesCents"), out.providerFeesCents);
  EXPECT_GT(snap.counterOr("provider.dispatches"), 0u);

  // Campaign ledger.
  EXPECT_EQ(snap.counterOr("campaign.runs"), 1u);
  EXPECT_EQ(snap.counterOr("campaign.patterns"),
            out.result.detectedAfterPattern.size());
  EXPECT_EQ(snap.counterOr("campaign.faults"), out.result.faultList.size());
  EXPECT_EQ(snap.counterOr("campaign.detected"), out.result.detected.size());
  EXPECT_EQ(snap.counterOr("campaign.injections"), out.result.injections);
  EXPECT_EQ(snap.counterOr("campaign.tablesRequested"),
            out.result.detectionTablesRequested);
  EXPECT_EQ(snap.counterOr("campaign.tableRoundTrips"),
            out.result.tableFetchRoundTrips);
  EXPECT_EQ(snap.counterOr("campaign.tableCacheHits"),
            out.result.tableCacheHits);
  EXPECT_EQ(snap.counterOr("campaign.slotsLeased"), out.result.slotsLeased);
  EXPECT_EQ(snap.counterOr("campaign.schedulerResets"),
            out.result.schedulerResets);
  EXPECT_EQ(snap.gaugeOr("campaign.peakConcurrentSchedulers"),
            static_cast<std::int64_t>(out.result.peakConcurrentSchedulers));

  // Transport saw no injected faults on the ideal profile, but planned every
  // attempt.
  EXPECT_EQ(snap.counterOr("transport.attempts"), out.transport.attempts);
  EXPECT_EQ(snap.counterOr("transport.droppedRequests"), 0u);

  // The snapshot JSON export round-trips through the validating parser.
  Json root;
  ASSERT_NO_THROW(root = JsonParser(snap.toJson()).parse());
  ASSERT_TRUE(root.has("counters"));
  ASSERT_TRUE(root.has("doubles"));
  ASSERT_TRUE(root.has("gauges"));
  ASSERT_TRUE(root.has("histograms"));
  EXPECT_EQ(root.at("counters").at("rmi.calls").number,
            static_cast<double>(out.stats.calls));
}

TEST(GoldenTrace, RingBufferBoundsMemoryAndCountsDrops) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "observability compiled out";
  Tracer tracer;  // private instance: the global's rings stay untouched
  tracer.setEnabled(true);
  const std::size_t total = Tracer::kRingCapacity + 3000;
  for (std::size_t i = 0; i < total; ++i) {
    tracer.instant("flood", "test", {{"i", static_cast<double>(i)}});
  }
  const std::vector<TraceEvent> events = tracer.collect();
  EXPECT_EQ(events.size(), Tracer::kRingCapacity);
  EXPECT_EQ(tracer.droppedEvents(), total - Tracer::kRingCapacity);
  // The ring dropped the OLDEST events: what survives is the tail.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().seq, total - Tracer::kRingCapacity);
  EXPECT_EQ(events.back().seq, total - 1);

  tracer.clear();
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.droppedEvents(), 0u);
}

}  // namespace
}  // namespace vcad::obs
