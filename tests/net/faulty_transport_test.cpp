// FaultyTransport unit tests: the fault schedule is a pure function of
// (seed, key, attempt) — reproducible across runs, instances and query
// interleavings — and the frame checksum catches every injected corruption.
// Also pins the NetworkModel determinism the chaos harness relies on: one
// seed, one delay sequence.
#include "net/faulty_transport.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "net/network.hpp"

namespace vcad::net {
namespace {

TEST(FaultProfile, ShippedProfilesAreNotIdeal) {
  EXPECT_TRUE(FaultProfile::none().ideal());
  for (const FaultProfile& p : FaultProfile::shipped()) {
    EXPECT_FALSE(p.ideal()) << p.name;
    EXPECT_FALSE(p.name.empty());
  }
  EXPECT_EQ(FaultProfile::shipped().size(), 6u);
}

TEST(FaultyTransport, PlanIsPureFunctionOfSeedKeyAttempt) {
  FaultyTransport a(FaultProfile::lossy(), 0xABCDEF);
  FaultyTransport b(FaultProfile::lossy(), 0xABCDEF);
  // Query b in reverse order: interleaving must not matter.
  std::vector<FaultPlan> fromA, fromB;
  for (std::uint64_t key = 1; key <= 50; ++key) {
    for (std::uint32_t attempt = 1; attempt <= 3; ++attempt) {
      fromA.push_back(a.plan(key, attempt));
    }
  }
  for (std::uint64_t key = 50; key >= 1; --key) {
    for (std::uint32_t attempt = 3; attempt >= 1; --attempt) {
      fromB.push_back(b.peek(key, attempt));
    }
  }
  for (std::uint64_t key = 1; key <= 50; ++key) {
    for (std::uint32_t attempt = 1; attempt <= 3; ++attempt) {
      const FaultPlan& pa = fromA[(key - 1) * 3 + (attempt - 1)];
      const FaultPlan& pb = fromB[(50 - key) * 3 + (3 - attempt)];
      EXPECT_EQ(pa.dropRequest, pb.dropRequest);
      EXPECT_EQ(pa.duplicateRequest, pb.duplicateRequest);
      EXPECT_EQ(pa.corruptRequest, pb.corruptRequest);
      EXPECT_EQ(pa.dropResponse, pb.dropResponse);
      EXPECT_EQ(pa.corruptResponse, pb.corruptResponse);
      EXPECT_EQ(pa.stall, pb.stall);
      EXPECT_EQ(pa.stallSec, pb.stallSec);
      EXPECT_EQ(pa.reorderDelaySec, pb.reorderDelaySec);
    }
  }
  // plan() counted, peek() did not.
  EXPECT_EQ(a.stats().attempts, 150u);
  EXPECT_EQ(b.stats().attempts, 0u);
}

TEST(FaultyTransport, ScheduleIsIdenticalAcrossThreads) {
  // Concurrent planners see the same schedule a serial sweep sees: the plan
  // derives from its own generator, not a shared stream. (TSan-checked.)
  FaultyTransport serial(FaultProfile::lossy(), 42);
  FaultyTransport shared(FaultProfile::lossy(), 42);
  constexpr int kKeys = 64;
  std::vector<FaultPlan> expected;
  for (std::uint64_t key = 1; key <= kKeys; ++key) {
    expected.push_back(serial.plan(key, 1));
  }
  std::vector<FaultPlan> got(kKeys);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int key = 1 + t; key <= kKeys; key += 4) {
        got[static_cast<std::size_t>(key - 1)] =
            shared.plan(static_cast<std::uint64_t>(key), 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].dropRequest,
              expected[static_cast<std::size_t>(i)].dropRequest)
        << i;
    EXPECT_EQ(got[static_cast<std::size_t>(i)].stall,
              expected[static_cast<std::size_t>(i)].stall)
        << i;
  }
  EXPECT_EQ(shared.stats().attempts, serial.stats().attempts);
  EXPECT_EQ(shared.stats().injected(), serial.stats().injected());
}

TEST(FaultyTransport, DifferentSeedsGiveDifferentSchedules) {
  FaultyTransport a(FaultProfile::lossy(), 1);
  FaultyTransport b(FaultProfile::lossy(), 2);
  int differences = 0;
  for (std::uint64_t key = 1; key <= 200; ++key) {
    const FaultPlan pa = a.peek(key, 1);
    const FaultPlan pb = b.peek(key, 1);
    if (pa.dropRequest != pb.dropRequest || pa.stall != pb.stall ||
        pa.duplicateRequest != pb.duplicateRequest) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultyTransport, SealedFramesRoundTripAndRejectDamage) {
  Rng rng(7);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint8_t> payload;
    const std::size_t n = 1 + rng.below(200);
    for (std::size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    const std::vector<std::uint8_t> original = payload;

    std::vector<std::uint8_t> frame = payload;
    sealFrame(frame);
    ASSERT_EQ(frame.size(), original.size() + 8);

    // Clean frame opens and restores the payload bit-exactly.
    std::vector<std::uint8_t> clean = frame;
    ASSERT_TRUE(openFrame(clean));
    EXPECT_EQ(clean, original);

    // Every truncation is rejected.
    for (std::size_t len = 0; len < frame.size(); ++len) {
      std::vector<std::uint8_t> truncated(frame.begin(),
                                          frame.begin() + static_cast<long>(len));
      EXPECT_FALSE(openFrame(truncated)) << "len=" << len;
    }
  }
}

TEST(FaultyTransport, InjectedCorruptionNeverGoesUndetected) {
  FaultyTransport transport(FaultProfile::corrupt(), 0x5eed);
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> payload;
    const std::size_t n = 4 + rng.below(100);
    for (std::size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    std::vector<std::uint8_t> frame = payload;
    sealFrame(frame);
    const std::vector<std::uint8_t> pristine = frame;
    transport.corrupt(frame, static_cast<std::uint64_t>(iter + 1), 1,
                      iter % 2 == 0 ? 0u : 1u);
    EXPECT_NE(frame, pristine) << "corrupt() must always change the frame";
    EXPECT_FALSE(openFrame(frame)) << "checksum must catch the damage";
  }
}

TEST(FaultyTransport, CorruptionIsDeterministicPerKeyAttemptChannel) {
  FaultyTransport transport(FaultProfile::corrupt(), 123);
  std::vector<std::uint8_t> a(64, 0xAA), b(64, 0xAA);
  transport.corrupt(a, 5, 2, 0);
  transport.corrupt(b, 5, 2, 0);
  EXPECT_EQ(a, b);
  std::vector<std::uint8_t> c(64, 0xAA);
  transport.corrupt(c, 5, 2, 1);  // response channel: independent damage
  EXPECT_NE(a, c);
}

TEST(NetworkModel, SameSeedSameDelaySequence) {
  // The chaos invariants lean on this: with the fault schedule fixed, the
  // jittered wire delays consumed in the same order are the same doubles.
  NetworkModel a(NetworkProfile::wan(), 0xFEED);
  NetworkModel b(NetworkProfile::wan(), 0xFEED);
  NetworkModel other(NetworkProfile::wan(), 0xFEED + 1);
  bool anyDifferent = false;
  for (int i = 0; i < 100; ++i) {
    const std::size_t bytes = 64 + static_cast<std::size_t>(i) * 17;
    const double da = a.messageDelaySec(bytes);
    EXPECT_EQ(da, b.messageDelaySec(bytes)) << i;
    if (da != other.messageDelaySec(bytes)) anyDifferent = true;
  }
  EXPECT_TRUE(anyDifferent) << "different seeds should jitter differently";
}

}  // namespace
}  // namespace vcad::net
