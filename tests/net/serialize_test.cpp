#include "net/serialize.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace vcad::net {
namespace {

TEST(ByteBuffer, ScalarRoundTrip) {
  ByteBuffer b;
  b.writeU8(0xAB);
  b.writeU16(0x1234);
  b.writeU32(0xDEADBEEF);
  b.writeU64(0x0123456789ABCDEFULL);
  b.writeBool(true);
  b.writeDouble(3.14159);
  EXPECT_EQ(b.readU8(), 0xAB);
  EXPECT_EQ(b.readU16(), 0x1234);
  EXPECT_EQ(b.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(b.readU64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(b.readBool());
  EXPECT_DOUBLE_EQ(b.readDouble(), 3.14159);
  EXPECT_TRUE(b.exhausted());
}

TEST(ByteBuffer, StringRoundTrip) {
  ByteBuffer b;
  b.writeString("hello world");
  b.writeString("");
  b.writeString(std::string("\0binary\xFF", 8));
  EXPECT_EQ(b.readString(), "hello world");
  EXPECT_EQ(b.readString(), "");
  EXPECT_EQ(b.readString(), std::string("\0binary\xFF", 8));
}

TEST(ByteBuffer, BytesRoundTrip) {
  ByteBuffer b;
  const std::vector<std::uint8_t> payload{1, 2, 3, 255, 0};
  b.writeBytes(payload);
  EXPECT_EQ(b.readBytes(), payload);
}

TEST(ByteBuffer, UnderflowThrows) {
  ByteBuffer b;
  b.writeU8(1);
  b.readU8();
  EXPECT_THROW(b.readU8(), std::out_of_range);
  ByteBuffer c;
  c.writeU32(100);  // declares 100 string bytes that are not there
  EXPECT_THROW(c.readString(), std::out_of_range);
}

TEST(ByteBuffer, WordRoundTripAllLogicValues) {
  const Word w = Word::fromString("10XZ01ZX1");
  ByteBuffer b;
  b.writeWord(w);
  EXPECT_EQ(b.readWord(), w);
}

TEST(ByteBuffer, WordCompactEncoding) {
  // 16-bit word: 1 width byte + 4 payload bytes (2 bits per position).
  ByteBuffer b;
  b.writeWord(Word::fromUint(16, 0xFFFF));
  EXPECT_EQ(b.size(), 5u);
}

TEST(ByteBuffer, ZeroWidthWord) {
  ByteBuffer b;
  b.writeWord(Word());
  EXPECT_EQ(b.readWord().width(), 0);
}

TEST(ByteBuffer, WordVectorRoundTrip) {
  std::vector<Word> words;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    words.push_back(Word::fromUint(1 + static_cast<int>(rng.below(64)),
                                   rng.next()));
  }
  ByteBuffer b;
  b.writeWordVector(words);
  EXPECT_EQ(b.readWordVector(), words);
}

class WordWidthRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WordWidthRoundTrip, PreservesEveryBit) {
  Rng rng(GetParam());
  Word w(GetParam());
  for (int i = 0; i < w.width(); ++i) {
    w.setBit(i, static_cast<Logic>(rng.below(4)));
  }
  ByteBuffer b;
  b.writeWord(w);
  EXPECT_EQ(b.readWord(), w);
}

INSTANTIATE_TEST_SUITE_P(Widths, WordWidthRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           31, 32, 33, 63, 64));

TEST(ByteBuffer, RewindAllowsRereading) {
  ByteBuffer b;
  b.writeU32(7);
  EXPECT_EQ(b.readU32(), 7u);
  b.rewind();
  EXPECT_EQ(b.readU32(), 7u);
}

}  // namespace
}  // namespace vcad::net
