#include "net/network.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "net/cpu_timer.hpp"

namespace vcad::net {
namespace {

TEST(NetworkProfile, RelativeLatencyOrdering) {
  EXPECT_LT(NetworkProfile::localhost().oneWayLatencySec,
            NetworkProfile::lan().oneWayLatencySec);
  EXPECT_LT(NetworkProfile::lan().oneWayLatencySec,
            NetworkProfile::wan().oneWayLatencySec);
  EXPECT_GT(NetworkProfile::lan().bandwidthBps,
            NetworkProfile::wan().bandwidthBps);
}

TEST(NetworkProfile, OnlyLocalhostSharesTheHost) {
  EXPECT_TRUE(NetworkProfile::localhost().sharedHost);
  EXPECT_FALSE(NetworkProfile::lan().sharedHost);
  EXPECT_FALSE(NetworkProfile::wan().sharedHost);
}

TEST(NetworkModel, DelayIncludesBandwidthTerm) {
  NetworkProfile p = NetworkProfile::ideal();
  p.oneWayLatencySec = 0.001;
  p.bandwidthBps = 1000.0;
  NetworkModel m(p);
  const double small = m.messageDelaySec(0);
  const double big = m.messageDelaySec(10000);
  EXPECT_NEAR(small, 0.001, 1e-12);
  EXPECT_NEAR(big, 0.001 + 10.0, 1e-9);
}

TEST(NetworkModel, JitterIsBoundedAndDeterministic) {
  NetworkModel a(NetworkProfile::wan(), 42);
  NetworkModel b(NetworkProfile::wan(), 42);
  const auto& p = a.profile();
  for (int i = 0; i < 200; ++i) {
    const double da = a.messageDelaySec(100);
    const double db = b.messageDelaySec(100);
    EXPECT_DOUBLE_EQ(da, db);  // same seed, same sequence
    const double base = p.oneWayLatencySec + 100.0 / p.bandwidthBps;
    EXPECT_GE(da, base - p.oneWayLatencySec * p.jitterFraction - 1e-12);
    EXPECT_LE(da, base + p.oneWayLatencySec * p.jitterFraction + 1e-12);
  }
}

TEST(NetworkModel, DelayNeverNegative) {
  NetworkProfile p = NetworkProfile::ideal();
  p.oneWayLatencySec = 1e-6;
  p.jitterFraction = 10.0;  // jitter far larger than the base latency
  NetworkModel m(p, 7);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(m.messageDelaySec(0), 0.0);
  }
}

TEST(NetworkModel, SharedHostChargesContention) {
  NetworkModel local(NetworkProfile::localhost());
  NetworkModel remote(NetworkProfile::lan());
  EXPECT_GT(local.serverComputeWallSec(1.0), 1.0);
  EXPECT_DOUBLE_EQ(remote.serverComputeWallSec(1.0), 1.0);
}

TEST(VirtualClock, AccumulatesAndResets) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.elapsedSec(), 0.0);
  c.advance(1.5);
  c.advance(0.25);
  EXPECT_DOUBLE_EQ(c.elapsedSec(), 1.75);
  c.reset();
  EXPECT_DOUBLE_EQ(c.elapsedSec(), 0.0);
}

TEST(VirtualClock, ThreadSafeAccumulation) {
  VirtualClock c;
  auto worker = [&c] {
    for (int i = 0; i < 10000; ++i) c.advance(0.001);
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_NEAR(c.elapsedSec(), 20.0, 1e-6);
}

TEST(CpuTimer, MeasuresBusyWork) {
  // Busy-spin for ~40ms of wall time; the thread CPU clock must register a
  // solid fraction of it even with coarse kernel accounting granularity.
  CpuTimer t;
  const auto start = std::chrono::steady_clock::now();
  volatile double sink = 0;
  while (std::chrono::steady_clock::now() - start <
         std::chrono::milliseconds(40)) {
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  }
  EXPECT_GT(t.elapsedSec(), 0.005);
}

TEST(CpuTimer, SleepDoesNotCountAsCpu) {
  CpuTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LT(t.elapsedSec(), 0.040);
}

}  // namespace
}  // namespace vcad::net
