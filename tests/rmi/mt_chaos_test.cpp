// Multi-client chaos suite for the MultiTenantProviderServer: N tenants
// hammer one shared server process-style (real Unix-domain sockets, real
// worker pool, real admission control), and every tenant's coverage
// results and fee ledgers must come out bit-identical to the same
// campaign run serially against a dedicated in-process provider —
// including when the job queue is shedding under load, when the tenant's
// shard restarts mid-run, and when a neighbouring tenant is being
// quota-rejected the whole time.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ip/multi_tenant_server.hpp"
#include "net/socket_transport.hpp"
#include "rmi/chaos_harness.hpp"

namespace vcad {
namespace {

using chaos::ChaosOutcome;
using chaos::ChaosRig;

/// One tenant's endpoint shard: a full ProviderServer (own sessions, fee
/// ledger, replay cache) serving the chaos multiplier, wrapped in the
/// harness's restart injector so a shard can crash mid-campaign.
class TenantShard : public rmi::ServerEndpoint {
 public:
  explicit TenantShard(std::uint64_t restartAfter)
      : server_("chaos-provider.host", nullptr),
        restarting_(server_, restartAfter) {
    chaos::registerChaosMultiplier(server_);
  }

  rmi::Response dispatch(const rmi::Request& request) override {
    return restarting_.dispatch(request);
  }
  std::string hostName() const override { return restarting_.hostName(); }

  ip::ProviderServer& server() { return server_; }
  std::uint64_t restarts() const { return restarting_.restarts(); }

 private:
  ip::ProviderServer server_;
  chaos::RestartingEndpoint restarting_;
};

/// Shared rig: the multi-tenant server plus a registry of the shards its
/// factory built, so tests can query per-tenant provider ledgers after the
/// campaigns finish.
struct MtRig {
  std::mutex mutex;
  std::map<ip::TenantId, TenantShard*> shards;
  std::unique_ptr<ip::MultiTenantProviderServer> server;
  std::string path;

  explicit MtRig(ip::MultiTenantProviderServer::Config cfg,
                 std::uint64_t restartAfter = 0) {
    static std::atomic<int> counter{0};
    path = "mt_chaos_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock";
    server = std::make_unique<ip::MultiTenantProviderServer>(
        [this, restartAfter](ip::TenantId tenant) {
          auto shard = std::make_unique<TenantShard>(restartAfter);
          {
            std::lock_guard<std::mutex> lock(mutex);
            shards[tenant] = shard.get();
          }
          return std::unique_ptr<rmi::ServerEndpoint>(std::move(shard));
        },
        cfg);
  }
  ~MtRig() {
    server->stop();
    std::remove(path.c_str());
  }

  void start() {
    ASSERT_TRUE(server->listenUnix(path));
    server->start();
  }
  TenantShard* shard(ip::TenantId tenant) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = shards.find(tenant);
    return it == shards.end() ? nullptr : it->second;
  }
};

/// Runs the standard chaos campaign as one tenant of the shared server,
/// over its own Unix-domain socket + channel (same seeds, patterns, and
/// fault machinery as the in-process ChaosRig).
ChaosOutcome runTenantCampaign(const std::string& path, ip::TenantId tenant,
                               const net::FaultProfile& profile,
                               std::uint64_t seed, int patternCount,
                               const rmi::RetryPolicy* policy = nullptr) {
  ChaosOutcome out;
  out.profileName = profile.name;
  out.seed = seed;
  net::FaultyTransport injector(profile, seed);
  auto transport = net::SocketTransport::connectUnix(path);
  EXPECT_NE(transport, nullptr);
  if (transport == nullptr) return out;
  rmi::RmiChannel channel(std::move(transport), net::NetworkProfile::wan(),
                          nullptr, ChaosRig::kChannelSeed);
  channel.setTenant(tenant);
  channel.setFaultInjector(&injector);
  if (policy != nullptr) channel.setRetryPolicy(*policy);
  ip::ProviderHandle provider(channel,
                              ip::ProviderHandle::CallMode::Blocking);
  Circuit circuit("chaosFault");
  auto& a = circuit.makeWord(ChaosRig::kW, "a");
  auto& b = circuit.makeWord(ChaosRig::kW, "b");
  auto& o = circuit.makeWord(2 * ChaosRig::kW, "o");
  chaos::ChaosPublicPartSource source;
  ip::RemoteConfig cfg;
  cfg.collectPower = false;
  cfg.publicPartSource = &source;  // the shard is across a socket
  auto* mult = &circuit.make<ip::RemoteComponent>(
      "MULT", provider, "MultFastLowPower", ChaosRig::kW,
      std::vector<std::pair<std::string, Connector*>>{{"a", &a}, {"b", &b}},
      std::vector<std::pair<std::string, Connector*>>{{"o", &o}}, cfg);
  ip::RemoteFaultClient client(*mult);
  std::vector<Connector*> pis = {&a, &b};
  std::vector<Connector*> pos = {&o};
  fault::VirtualFaultSimulator sim(circuit, {&client}, pis, pos);
  out.result = sim.run(chaos::chaosPatterns(patternCount));
  out.stats = channel.stats();
  out.transport = injector.stats();
  out.recoveries = provider.recoveries();
  out.remoteErrors = mult->remoteErrors();
  return out;
}

/// Full bit-identity: everything the simulation decided and everything
/// deterministically charged, including the deterministic network clock.
/// Valid only when the multi-tenant run took no sheds (sheds burn retries
/// and simulated time, which the coverage/fee invariants must — and the
/// shed-mode test proves they do — survive).
void expectBitIdentical(const ChaosOutcome& base, const ChaosOutcome& got) {
  SCOPED_TRACE("profile=" + base.profileName +
               " seed=" + std::to_string(base.seed));
  EXPECT_EQ(base.result.faultList, got.result.faultList);
  EXPECT_EQ(base.result.detected, got.result.detected);
  EXPECT_EQ(base.result.detectedAfterPattern, got.result.detectedAfterPattern);
  EXPECT_EQ(base.result.detectionTablesRequested,
            got.result.detectionTablesRequested);
  EXPECT_EQ(base.result.tableFetchRoundTrips, got.result.tableFetchRoundTrips);
  EXPECT_EQ(base.stats.calls, got.stats.calls);
  EXPECT_EQ(base.stats.blockedCalls, got.stats.blockedCalls);
  EXPECT_EQ(base.stats.asyncCalls, got.stats.asyncCalls);
  EXPECT_EQ(base.stats.securityRejections, got.stats.securityRejections);
  EXPECT_EQ(base.stats.bytesSent, got.stats.bytesSent);
  EXPECT_EQ(base.stats.bytesReceived, got.stats.bytesReceived);
  EXPECT_EQ(base.stats.retries, got.stats.retries);
  EXPECT_EQ(base.stats.timeouts, got.stats.timeouts);
  EXPECT_EQ(base.stats.duplicatesSuppressed, got.stats.duplicatesSuppressed);
  EXPECT_EQ(base.stats.corruptedFramesDropped,
            got.stats.corruptedFramesDropped);
  EXPECT_EQ(base.stats.transportFailures, got.stats.transportFailures);
  EXPECT_DOUBLE_EQ(base.stats.feesCents, got.stats.feesCents);
  EXPECT_DOUBLE_EQ(base.stats.networkSec, got.stats.networkSec);
  EXPECT_EQ(base.transport.attempts, got.transport.attempts);
  EXPECT_EQ(base.transport.droppedRequests, got.transport.droppedRequests);
  EXPECT_EQ(base.transport.droppedResponses, got.transport.droppedResponses);
  EXPECT_EQ(base.transport.duplicatedRequests,
            got.transport.duplicatedRequests);
  EXPECT_EQ(base.transport.corruptedRequests, got.transport.corruptedRequests);
  EXPECT_EQ(base.transport.corruptedResponses,
            got.transport.corruptedResponses);
  EXPECT_EQ(base.recoveries, got.recoveries);
  EXPECT_EQ(base.remoteErrors, got.remoteErrors);
}

/// The shed-tolerant contract: sheds may burn retries, bytes, and simulated
/// time, but everything the simulation decided and everything billed must
/// still match the serial run exactly.
void expectOutcomeIdentical(const ChaosOutcome& base, const ChaosOutcome& got) {
  SCOPED_TRACE("profile=" + base.profileName +
               " seed=" + std::to_string(base.seed));
  EXPECT_EQ(base.result.faultList, got.result.faultList);
  EXPECT_EQ(base.result.detected, got.result.detected);
  EXPECT_EQ(base.result.detectedAfterPattern, got.result.detectedAfterPattern);
  EXPECT_EQ(base.result.detectionTablesRequested,
            got.result.detectionTablesRequested);
  EXPECT_EQ(base.stats.calls, got.stats.calls);
  EXPECT_EQ(base.stats.securityRejections, got.stats.securityRejections);
  EXPECT_DOUBLE_EQ(base.stats.feesCents, got.stats.feesCents);
  EXPECT_EQ(base.remoteErrors, got.remoteErrors);
}

struct TenantPlan {
  ip::TenantId tenant;
  net::FaultProfile profile;
  std::uint64_t seed;
};

TEST(MtChaos, FourTenantsBitIdenticalToFourSerialRuns) {
  // Ample queue: four tenants run concurrently with no sheds, so EVERY
  // deterministic quantity — coverage, fees, retries, networkSec, byte
  // counts — must match each tenant's dedicated serial baseline exactly.
  const std::vector<net::FaultProfile> shipped = net::FaultProfile::shipped();
  ASSERT_GE(shipped.size(), 4u);
  const std::vector<TenantPlan> plans = {
      {1, shipped[0], 11},
      {2, shipped[1], 12},
      {3, shipped[2], 13},
      {4, shipped[3], 14},
  };
  std::vector<ChaosOutcome> bases;
  bases.reserve(plans.size());
  for (const TenantPlan& p : plans) {
    bases.push_back(chaos::runChaosCampaign(p.profile, p.seed, 6, 0, 0, 1,
                                            nullptr, 0, /*traced=*/false));
  }

  ip::MultiTenantProviderServer::Config cfg;
  cfg.queue.workers = 4;
  cfg.queue.maxQueueDepth = 64;
  MtRig rig(cfg);
  rig.start();
  std::vector<ChaosOutcome> got(plans.size());
  std::vector<std::thread> clients;
  clients.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    clients.emplace_back([&rig, &plans, &got, i] {
      got[i] = runTenantCampaign(rig.path, plans[i].tenant, plans[i].profile,
                                 plans[i].seed, 6);
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::size_t i = 0; i < plans.size(); ++i) {
    expectBitIdentical(bases[i], got[i]);
    EXPECT_EQ(got[i].stats.shedResponses, 0u);  // the queue really was ample
    EXPECT_FALSE(got[i].result.detected.empty())
        << chaos::chaosFailureReport(got[i]);
    // The tenant's server-side ledger matches the dedicated provider's
    // session ledger bit for bit. (providerFeesCents covers the final
    // session only, so the comparison is meaningful when no recovery
    // re-opened the session — bit-identity above already pinned the
    // recovery counts equal.)
    const ip::TenantUsage usage = rig.server->tenantUsage(plans[i].tenant);
    if (got[i].recoveries == 0) {
      EXPECT_DOUBLE_EQ(usage.feesCents, bases[i].providerFeesCents);
    }
    EXPECT_EQ(usage.quotaRejected, 0u);
  }
  EXPECT_EQ(rig.server->stats().tenantsSeen, plans.size());
  rig.server->stop();
}

TEST(MtChaos, SheddingQueuePreservesCoverageAndFees) {
  // Starved queue: one worker, depth one, four tenants — the server sheds
  // constantly, clients ride their retry budgets. Turbulence must stay in
  // the retry counters: per-tenant coverage and fees still match the
  // serial baselines exactly, and nothing surfaced as a remote error.
  const net::FaultProfile profile = net::FaultProfile::none();
  const std::vector<TenantPlan> plans = {
      {1, profile, 21}, {2, profile, 22}, {3, profile, 23}, {4, profile, 24}};
  std::vector<ChaosOutcome> bases;
  bases.reserve(plans.size());
  for (const TenantPlan& p : plans) {
    bases.push_back(chaos::runChaosCampaign(p.profile, p.seed, 6, 0, 0, 1,
                                            nullptr, 0, /*traced=*/false));
  }

  ip::MultiTenantProviderServer::Config cfg;
  cfg.queue.workers = 1;
  cfg.queue.maxQueueDepth = 1;
  MtRig rig(cfg);
  rig.start();
  // A generous attempt budget: shed storms must exhaust before it does
  // (a TransportFailure would trigger session recovery and re-billing,
  // which is exactly what this test must prove does not happen).
  rmi::RetryPolicy generous;
  generous.maxAttempts = 200;
  std::vector<ChaosOutcome> got(plans.size());
  std::vector<std::thread> clients;
  clients.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    clients.emplace_back([&rig, &plans, &got, &generous, i] {
      got[i] = runTenantCampaign(rig.path, plans[i].tenant, plans[i].profile,
                                 plans[i].seed, 6, &generous);
    });
  }
  for (std::thread& t : clients) t.join();

  std::uint64_t shedsSeen = 0;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    expectOutcomeIdentical(bases[i], got[i]);
    EXPECT_EQ(got[i].remoteErrors, 0u) << chaos::chaosFailureReport(got[i]);
    EXPECT_EQ(got[i].stats.transportFailures, 0u);
    EXPECT_EQ(got[i].recoveries, 0u);
    shedsSeen += got[i].stats.shedResponses;
    const ip::TenantUsage usage = rig.server->tenantUsage(plans[i].tenant);
    EXPECT_DOUBLE_EQ(usage.feesCents, bases[i].providerFeesCents);
  }
  // Four clients against a depth-one single-worker queue: the admission
  // control must actually have fired, or this test proved nothing.
  const ip::MultiTenantProviderServer::Stats s = rig.server->stats();
  EXPECT_GT(s.shedTooManyPending + s.shedOverloaded, 0u);
  EXPECT_EQ(shedsSeen, s.shedTooManyPending + s.shedOverloaded);
  rig.server->stop();
}

TEST(MtChaos, MidRunShardRestartStaysBitIdentical) {
  // The tenant's shard loses all sessions after its 7th dispatch. The
  // client must recover over the shared multi-tenant front end and finish
  // bit-identical to the serial restart baseline.
  const net::FaultProfile profile = net::FaultProfile::drop();
  constexpr std::uint64_t kSeed = 3;
  constexpr std::uint64_t kRestartAfter = 7;
  ChaosOutcome base = chaos::runChaosCampaign(profile, kSeed, 6, kRestartAfter,
                                              0, 1, nullptr, 0,
                                              /*traced=*/false);
  ASSERT_EQ(base.restarts, 1u);  // the crash point actually fired

  ip::MultiTenantProviderServer::Config cfg;
  cfg.queue.workers = 2;
  cfg.queue.maxQueueDepth = 64;
  MtRig rig(cfg, kRestartAfter);
  rig.start();
  ChaosOutcome got = runTenantCampaign(rig.path, 5, profile, kSeed, 6);
  expectBitIdentical(base, got);
  EXPECT_GE(got.recoveries, 1u) << chaos::chaosFailureReport(got);
  EXPECT_EQ(got.remoteErrors, 0u);
  TenantShard* shard = rig.shard(5);
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->restarts(), 1u);
  rig.server->stop();
}

TEST(MtChaos, QuotaThrottledNeighbourNeverPerturbsOtherTenants) {
  // Differential run: tenant 2's fee quota dies mid-run (instantiate costs
  // 25.0, the cap sits just under the fifth 0.01 eval), so every call
  // after the crossing point is deterministically quota-rejected — while
  // tenants 1 and 3 run full campaigns bit-identical to their solo
  // baselines, byte-for-byte oblivious to the thrashing neighbour.
  const TenantPlan planA{1, net::FaultProfile::none(), 31};
  const TenantPlan planC{3, net::FaultProfile::lossy(), 33};
  ChaosOutcome baseA = chaos::runChaosCampaign(planA.profile, planA.seed, 6,
                                               0, 0, 1, nullptr, 0,
                                               /*traced=*/false);
  ChaosOutcome baseC = chaos::runChaosCampaign(planC.profile, planC.seed, 6,
                                               0, 0, 1, nullptr, 0,
                                               /*traced=*/false);

  ip::MultiTenantProviderServer::Config cfg;
  cfg.queue.workers = 3;
  cfg.queue.maxQueueDepth = 64;
  MtRig rig(cfg);
  ip::TenantQuota quota;
  // 25.0 (instantiate) + 5 × 0.01 (evals) accumulates to 25.049999…; the
  // cap at 25.049 admits exactly those and rejects everything after —
  // chosen off the FP-dust boundary so the rejection point is stable.
  quota.maxFeeCents = 25.049;
  rig.server->setTenantQuota(2, quota);
  rig.start();

  ChaosOutcome gotA;
  ChaosOutcome gotC;
  constexpr int kProbes = 40;
  struct ThrottledRun {
    bool instantiated = false;
    int okCalls = 0;
    int rejected = 0;
    int firstRejected = -1;
    rmi::ChannelStats stats;
  } b;
  std::thread tenantA([&] {
    gotA = runTenantCampaign(rig.path, 1, planA.profile, planA.seed, 6);
  });
  std::thread tenantC([&] {
    gotC = runTenantCampaign(rig.path, 3, planC.profile, planC.seed, 6);
  });
  std::thread tenantB([&] {
    auto transport = net::SocketTransport::connectUnix(rig.path);
    EXPECT_NE(transport, nullptr);
    if (transport == nullptr) return;
    rmi::RmiChannel channel(std::move(transport), net::NetworkProfile::wan(),
                            nullptr, ChaosRig::kChannelSeed);
    channel.setTenant(2);
    ip::ProviderHandle provider(channel);
    rmi::Args ia;
    ia.addU64(ChaosRig::kW);
    rmi::Response resp = provider.call(rmi::MethodId::Instantiate, 0,
                                       std::move(ia), "MultFastLowPower");
    b.instantiated = resp.ok();
    if (!b.instantiated) return;
    const rmi::InstanceId instance = resp.payload.readU64();
    for (int n = 0; n < kProbes; ++n) {
      rmi::Args args;
      args.addWord(Word::fromUint(2 * ChaosRig::kW, n));
      rmi::Response r =
          provider.call(rmi::MethodId::EvalFunction, instance,
                        std::move(args));
      if (r.ok()) {
        ++b.okCalls;
      } else {
        EXPECT_EQ(r.status, rmi::Status::PaymentRequired);
        if (b.firstRejected < 0) b.firstRejected = n;
        ++b.rejected;
      }
    }
    b.stats = channel.stats();
  });
  tenantA.join();
  tenantC.join();
  tenantB.join();

  // The unthrottled tenants are byte-for-byte oblivious to the neighbour.
  expectBitIdentical(baseA, gotA);
  expectBitIdentical(baseC, gotC);
  EXPECT_FALSE(gotA.result.detected.empty());

  // The throttled tenant was refused deterministically: exactly five evals
  // fit under the cap, the rejections are a clean suffix, typed terminal
  // (no retries, no recoveries), and the ledger froze at the crossing.
  ASSERT_TRUE(b.instantiated);
  EXPECT_EQ(b.okCalls, 5);
  EXPECT_EQ(b.firstRejected, 5);
  EXPECT_EQ(b.rejected, kProbes - 5);
  EXPECT_EQ(b.stats.quotaRejections, static_cast<std::uint64_t>(kProbes - 5));
  EXPECT_EQ(b.stats.retries, 0u);  // rejections never retry
  EXPECT_EQ(b.stats.timeouts, 0u);
  EXPECT_EQ(b.stats.transportFailures, 0u);
  const ip::TenantUsage usage = rig.server->tenantUsage(2);
  EXPECT_EQ(usage.quotaRejected, static_cast<std::uint64_t>(kProbes - 5));
  double expectedFees = 25.0;  // accumulated the way the ledger does
  for (int i = 0; i < 5; ++i) expectedFees += 0.01;
  EXPECT_DOUBLE_EQ(usage.feesCents, expectedFees);
  EXPECT_GT(rig.server->stats().quotaRejected, 0u);
  rig.server->stop();
}

}  // namespace
}  // namespace vcad
