// Fuzz-style robustness tests for the wire protocol: random well-formed
// messages round-trip bit-exactly; random corrupted byte streams never
// crash the unmarshaller (they throw or produce a value, but must not read
// out of bounds — exercised under the normal gtest harness and caught by
// the ByteBuffer bounds checks).
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "net/faulty_transport.hpp"
#include "net/transport.hpp"
#include "rmi/protocol.hpp"
#include "rmi/security.hpp"

namespace vcad::rmi {
namespace {

Word randomWord(Rng& rng) {
  const int width = 1 + static_cast<int>(rng.below(64));
  Word w(width);
  for (int i = 0; i < width; ++i) {
    w.setBit(i, static_cast<Logic>(rng.below(4)));
  }
  return w;
}

std::string randomString(Rng& rng) {
  std::string s;
  const std::size_t n = rng.below(40);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.below(256)));
  }
  return s;
}

/// Builds a random well-formed request and remembers how to verify it.
struct FuzzCase {
  Request request;
  std::vector<int> fieldKinds;  // 0=u64 1=double 2=word 3=wordvec 4=string
  std::vector<std::uint64_t> u64s;
  std::vector<double> doubles;
  std::vector<Word> words;
  std::vector<std::vector<Word>> wordVecs;
  std::vector<std::string> strings;
};

FuzzCase makeCase(Rng& rng) {
  FuzzCase fc;
  fc.request.session = rng.next();
  fc.request.instance = rng.next();
  fc.request.method = static_cast<MethodId>(1 + rng.below(14));
  fc.request.idempotencyKey = rng.next();
  fc.request.spanContext = rng.next();
  fc.request.component = randomString(rng);
  const int fields = static_cast<int>(rng.below(8));
  for (int i = 0; i < fields; ++i) {
    const int kind = static_cast<int>(rng.below(5));
    fc.fieldKinds.push_back(kind);
    switch (kind) {
      case 0: {
        const auto v = rng.next();
        fc.u64s.push_back(v);
        fc.request.args.addU64(v);
        break;
      }
      case 1: {
        const double v = rng.uniform(-1e9, 1e9);
        fc.doubles.push_back(v);
        fc.request.args.addDouble(v);
        break;
      }
      case 2: {
        const Word w = randomWord(rng);
        fc.words.push_back(w);
        fc.request.args.addWord(w);
        break;
      }
      case 3: {
        std::vector<Word> ws;
        const std::size_t n = rng.below(6);
        for (std::size_t k = 0; k < n; ++k) ws.push_back(randomWord(rng));
        fc.wordVecs.push_back(ws);
        fc.request.args.addWordVector(ws);
        break;
      }
      default: {
        const std::string s = randomString(rng);
        fc.strings.push_back(s);
        fc.request.args.addString(s);
        break;
      }
    }
  }
  return fc;
}

class ProtocolFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolFuzz, WellFormedRequestsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 11400714819323198485ULL);
  for (int iter = 0; iter < 50; ++iter) {
    FuzzCase fc = makeCase(rng);
    net::ByteBuffer wire = fc.request.marshal();
    Request back = Request::unmarshal(wire);
    EXPECT_EQ(back.session, fc.request.session);
    EXPECT_EQ(back.instance, fc.request.instance);
    EXPECT_EQ(back.method, fc.request.method);
    EXPECT_EQ(back.idempotencyKey, fc.request.idempotencyKey);
    EXPECT_EQ(back.spanContext, fc.request.spanContext);
    EXPECT_EQ(back.component, fc.request.component);
    std::size_t iu = 0, id = 0, iw = 0, iv = 0, is = 0;
    for (int kind : fc.fieldKinds) {
      switch (kind) {
        case 0:
          EXPECT_EQ(back.args.takeU64(), fc.u64s[iu++]);
          break;
        case 1:
          EXPECT_DOUBLE_EQ(back.args.takeDouble(), fc.doubles[id++]);
          break;
        case 2:
          EXPECT_EQ(back.args.takeWord(), fc.words[iw++]);
          break;
        case 3:
          EXPECT_EQ(back.args.takeWordVector(), fc.wordVecs[iv++]);
          break;
        default:
          EXPECT_EQ(back.args.takeString(), fc.strings[is++]);
          break;
      }
    }
    // A clean payload always passes the filter.
    MarshalFilter filter;
    EXPECT_TRUE(filter.admit(fc.request));
  }
}

TEST_P(ProtocolFuzz, CorruptedStreamsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2862933555777941757ULL);
  for (int iter = 0; iter < 100; ++iter) {
    FuzzCase fc = makeCase(rng);
    auto bytes = fc.request.marshal().bytes();
    // Random mutations: flips, truncation, or garbage extension.
    const int mode = static_cast<int>(rng.below(3));
    if (mode == 0 && !bytes.empty()) {
      for (int k = 0; k < 4; ++k) {
        bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(rng.next());
      }
    } else if (mode == 1 && bytes.size() > 2) {
      bytes.resize(rng.below(bytes.size()));
    } else {
      for (int k = 0; k < 8; ++k) {
        bytes.push_back(static_cast<std::uint8_t>(rng.next()));
      }
    }
    net::ByteBuffer wire(std::move(bytes));
    try {
      Request back = Request::unmarshal(wire);
      // If unmarshalling survived, the filter scan must also terminate.
      MarshalFilter filter;
      (void)filter.admit(back);
      // Draining typed takes may throw; that is acceptable behaviour.
      try {
        while (true) (void)back.args.takeU64();
      } catch (const std::exception&) {
      }
    } catch (const std::exception&) {
      // Bounds-checked rejection is the expected failure mode.
    }
  }
}

TEST_P(ProtocolFuzz, WellFormedResponsesRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL);
  for (int iter = 0; iter < 100; ++iter) {
    Response resp;
    resp.status = static_cast<Status>(rng.below(7));
    resp.error = randomString(rng);
    resp.feeCents = rng.uniform(0.0, 1e6);
    resp.replayed = rng.chance(0.5);
    const std::size_t n = rng.below(64);
    for (std::size_t i = 0; i < n; ++i) resp.payload.writeU8(
        static_cast<std::uint8_t>(rng.next()));

    net::ByteBuffer wire = resp.marshal();
    Response back = Response::unmarshal(wire);
    EXPECT_EQ(back.status, resp.status);
    EXPECT_EQ(back.error, resp.error);
    EXPECT_EQ(back.feeCents, resp.feeCents);  // bit-exact, it is a ledger entry
    EXPECT_EQ(back.replayed, resp.replayed);
    EXPECT_EQ(back.payload.bytes(), resp.payload.bytes());
  }
}

TEST_P(ProtocolFuzz, EveryTruncatedPrefixIsRejectedNotMisread) {
  // Every field is either fixed-size or length-prefixed, so cutting the
  // stream anywhere strictly short of the end must throw from the
  // bounds-checked readers — a truncated message can never silently
  // unmarshal into a different valid message.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9049959679273693967ULL);
  for (int iter = 0; iter < 10; ++iter) {
    FuzzCase fc = makeCase(rng);
    const auto bytes = fc.request.marshal().bytes();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      net::ByteBuffer prefix(std::vector<std::uint8_t>(
          bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len)));
      EXPECT_THROW(Request::unmarshal(prefix), std::exception)
          << "prefix length " << len << " of " << bytes.size();
    }

    Response resp;
    resp.status = Status::Ok;
    resp.error = randomString(rng);
    resp.feeCents = 0.25;
    resp.payload.writeU64(rng.next());
    const auto rbytes = resp.marshal().bytes();
    for (std::size_t len = 0; len < rbytes.size(); ++len) {
      net::ByteBuffer prefix(std::vector<std::uint8_t>(
          rbytes.begin(), rbytes.begin() + static_cast<std::ptrdiff_t>(len)));
      EXPECT_THROW(Response::unmarshal(prefix), std::exception)
          << "prefix length " << len << " of " << rbytes.size();
    }
  }
}

TEST_P(ProtocolFuzz, CorruptedSpanContextBytesAreRejectedBySealedFrames) {
  // The spanContext field occupies bytes [28, 36) of the marshalled request
  // (after session, instance, method, idempotencyKey). A sealed frame with
  // any of those bytes flipped must fail the checksum — a corrupted trace
  // id can never slip through and stitch a span onto the wrong flow.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 14029467366897019727ULL);
  constexpr std::size_t kSpanCtxOffset = 28;
  for (int iter = 0; iter < 50; ++iter) {
    FuzzCase fc = makeCase(rng);
    std::vector<std::uint8_t> sealed = fc.request.marshal().bytes();
    net::sealFrame(sealed);
    const std::size_t pos = kSpanCtxOffset + rng.below(8);
    sealed[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_FALSE(net::openFrame(sealed))
        << "flipped spanContext byte at offset " << pos;
  }
}

TEST_P(ProtocolFuzz, CorruptedSpanContextNeverCrashesTheUnmarshaller) {
  // Without a frame seal, a mangled spanContext region must parse (it is a
  // fixed-width integer, any bit pattern is representable) or throw from
  // the bounds-checked readers — never crash, and never disturb the fields
  // marshalled before it.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 11677594348949725157ULL);
  constexpr std::size_t kSpanCtxOffset = 28;
  for (int iter = 0; iter < 50; ++iter) {
    FuzzCase fc = makeCase(rng);
    std::vector<std::uint8_t> bytes = fc.request.marshal().bytes();
    for (std::size_t i = 0; i < 8; ++i) {
      bytes[kSpanCtxOffset + i] = static_cast<std::uint8_t>(rng.next());
    }
    net::ByteBuffer wire{std::vector<std::uint8_t>(bytes)};
    try {
      const Request back = Request::unmarshal(wire);
      EXPECT_EQ(back.session, fc.request.session);
      EXPECT_EQ(back.instance, fc.request.instance);
      EXPECT_EQ(back.method, fc.request.method);
      EXPECT_EQ(back.idempotencyKey, fc.request.idempotencyKey);
      EXPECT_EQ(back.component, fc.request.component);
    } catch (const std::exception&) {
      // Acceptable only if the region mutation invalidated nothing before
      // it — which it cannot, so reaching here means a reader over-read.
      ADD_FAILURE() << "fixed-width spanContext corruption must still parse";
    }
  }
}

TEST_P(ProtocolFuzz, FrameHeadersRoundTripWithRequestIds) {
  // The socket framing layer wraps every sealed payload in a
  // [magic | method | request-id | length] header; both header kinds must
  // round-trip every field bit-exactly, request id included — that id is
  // what matches out-of-order responses back to their attempts.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint8_t> payload;
    const std::size_t n = rng.below(64);
    for (std::size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<std::uint8_t>(rng.next()));
    }

    net::RequestFrameHeader rq;
    rq.methodId = static_cast<std::uint32_t>(1 + rng.below(14));
    rq.requestId = rng.next();
    rq.tenantId = rng.next();
    rq.priority =
        static_cast<net::JobPriority>(rng.below(net::kJobPriorityCount));
    const auto reqFrame = net::encodeRequestFrame(rq, payload);
    ASSERT_EQ(reqFrame.size(), net::kRequestHeaderBytes + payload.size());
    net::RequestFrameHeader rqBack;
    ASSERT_TRUE(net::decodeRequestFrameHeader(
        reqFrame.data(), net::kRequestHeaderBytes, rqBack));
    EXPECT_EQ(rqBack.methodId, rq.methodId);
    EXPECT_EQ(rqBack.requestId, rq.requestId);
    EXPECT_EQ(rqBack.tenantId, rq.tenantId);
    EXPECT_EQ(rqBack.priority, rq.priority);
    EXPECT_EQ(rqBack.payloadBytes, payload.size());

    net::ResponseFrameHeader rs;
    rs.status = static_cast<net::FrameStatus>(
        rng.below(6));  // Ok..QuotaExceeded are all encodable statuses
    rs.requestId = rng.next();
    rs.serverCpuNanos = rng.next();
    const auto respFrame = net::encodeResponseFrame(rs, payload);
    ASSERT_EQ(respFrame.size(), net::kResponseHeaderBytes + payload.size());
    net::ResponseFrameHeader rsBack;
    ASSERT_TRUE(net::decodeResponseFrameHeader(
        respFrame.data(), net::kResponseHeaderBytes, rsBack));
    EXPECT_EQ(rsBack.status, rs.status);
    EXPECT_EQ(rsBack.requestId, rs.requestId);
    EXPECT_EQ(rsBack.serverCpuNanos, rs.serverCpuNanos);
    EXPECT_EQ(rsBack.payloadBytes, payload.size());
  }
}

TEST_P(ProtocolFuzz, EveryTruncatedFrameHeaderPrefixIsRejected) {
  // On the socket path the header is read as a fixed-size block; every
  // strict prefix must fail the decoder, never be misread as a shorter
  // valid header.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0xbf58476d1ce4e5b9ULL);
  for (int iter = 0; iter < 20; ++iter) {
    net::RequestFrameHeader rq;
    rq.methodId = static_cast<std::uint32_t>(rng.next());
    rq.requestId = rng.next();
    const auto reqFrame = net::encodeRequestFrame(rq, {});
    for (std::size_t len = 0; len < net::kRequestHeaderBytes; ++len) {
      net::RequestFrameHeader out;
      EXPECT_FALSE(net::decodeRequestFrameHeader(reqFrame.data(), len, out))
          << "request header prefix length " << len;
    }

    net::ResponseFrameHeader rs;
    rs.requestId = rng.next();
    rs.serverCpuNanos = rng.next();
    const auto respFrame = net::encodeResponseFrame(rs, {});
    for (std::size_t len = 0; len < net::kResponseHeaderBytes; ++len) {
      net::ResponseFrameHeader out;
      EXPECT_FALSE(net::decodeResponseFrameHeader(respFrame.data(), len, out))
          << "response header prefix length " << len;
    }
  }
}

TEST_P(ProtocolFuzz, MangledFrameHeadersNeverDecodeAsValid) {
  // A header with a wrong magic, an out-of-range status, or an absurd
  // length must be rejected — the stream receivers treat that as framing
  // loss and kill the wire rather than guessing at a resync point.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x94d049bb133111ebULL);
  for (int iter = 0; iter < 100; ++iter) {
    net::RequestFrameHeader rq;
    rq.methodId = static_cast<std::uint32_t>(rng.next());
    rq.requestId = rng.next();
    auto frame = net::encodeRequestFrame(rq, {});
    // Any magic-byte flip must reject.
    frame[rng.below(4)] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    net::RequestFrameHeader out;
    EXPECT_FALSE(net::decodeRequestFrameHeader(
        frame.data(), net::kRequestHeaderBytes, out));
  }
  // Oversized announced payload: decodes as hostile, not as a giant alloc.
  net::RequestFrameHeader rq;
  rq.requestId = 7;
  auto frame = net::encodeRequestFrame(rq, {});
  frame[28] = 0xff;  // payload length > kMaxFramePayloadBytes
  frame[29] = 0xff;
  frame[30] = 0xff;
  frame[31] = 0xff;
  net::RequestFrameHeader out;
  EXPECT_FALSE(net::decodeRequestFrameHeader(frame.data(),
                                             net::kRequestHeaderBytes, out));

  net::ResponseFrameHeader rs;
  rs.requestId = 9;
  auto resp = net::encodeResponseFrame(rs, {});
  resp[4] = 0x7f;  // status far beyond the enum range
  net::ResponseFrameHeader rsOut;
  EXPECT_FALSE(net::decodeResponseFrameHeader(
      resp.data(), net::kResponseHeaderBytes, rsOut));
}

TEST_P(ProtocolFuzz, OutOfRangePriorityAndStatusBytesAreRejected) {
  // The priority word sits at bytes [24, 28) of the request header; any
  // value >= kJobPriorityCount is a protocol violation the decoder must
  // refuse (a server must never be tricked into indexing a lane that does
  // not exist). Likewise response statuses: 4 and 5 are now real verdicts
  // (Overloaded, QuotaExceeded), 6 and up remain undecodable.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0xd6e8feb86659fd93ULL);
  for (int iter = 0; iter < 50; ++iter) {
    net::RequestFrameHeader rq;
    rq.requestId = rng.next();
    rq.tenantId = rng.next();
    auto frame = net::encodeRequestFrame(rq, {});
    const std::uint32_t bad =
        net::kJobPriorityCount +
        static_cast<std::uint32_t>(rng.below(1u << 24));
    frame[24] = static_cast<std::uint8_t>(bad >> 24);
    frame[25] = static_cast<std::uint8_t>(bad >> 16);
    frame[26] = static_cast<std::uint8_t>(bad >> 8);
    frame[27] = static_cast<std::uint8_t>(bad);
    net::RequestFrameHeader out;
    EXPECT_FALSE(net::decodeRequestFrameHeader(
        frame.data(), net::kRequestHeaderBytes, out))
        << "priority " << bad << " must not decode";
  }
  for (std::uint8_t status : {std::uint8_t{6}, std::uint8_t{7},
                              std::uint8_t{42}, std::uint8_t{0xff}}) {
    net::ResponseFrameHeader rs;
    rs.requestId = 11;
    auto resp = net::encodeResponseFrame(rs, {});
    resp[4] = status;
    net::ResponseFrameHeader rsOut;
    EXPECT_FALSE(net::decodeResponseFrameHeader(
        resp.data(), net::kResponseHeaderBytes, rsOut))
        << "status byte " << int(status) << " must not decode";
  }
  // The two new verdicts are valid wire statuses and survive a round trip.
  for (net::FrameStatus status :
       {net::FrameStatus::Overloaded, net::FrameStatus::QuotaExceeded}) {
    net::ResponseFrameHeader rs;
    rs.status = status;
    rs.requestId = 12;
    const auto resp = net::encodeResponseFrame(rs, {});
    net::ResponseFrameHeader rsOut;
    ASSERT_TRUE(net::decodeResponseFrameHeader(
        resp.data(), net::kResponseHeaderBytes, rsOut));
    EXPECT_EQ(rsOut.status, status);
  }
}

TEST_P(ProtocolFuzz, TenantAndRequestIdFieldsAreIndependent) {
  // Cross-tenant request-id confusion at the codec level: two frames that
  // share a request id but differ only in tenant id must stay
  // distinguishable, and corrupting either field's bytes must never bleed
  // into the other. A demux that mixed them up would route one tenant's
  // reply (and bill) to another.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0xa0761d6478bd642fULL);
  for (int iter = 0; iter < 50; ++iter) {
    const std::uint64_t sharedRequestId = rng.next();
    net::RequestFrameHeader a;
    a.methodId = 5;
    a.requestId = sharedRequestId;
    a.tenantId = rng.next();
    net::RequestFrameHeader b = a;
    b.tenantId = a.tenantId + 1 + rng.below(1000);
    const auto frameA = net::encodeRequestFrame(a, {});
    const auto frameB = net::encodeRequestFrame(b, {});
    EXPECT_NE(frameA, frameB);
    net::RequestFrameHeader backA;
    net::RequestFrameHeader backB;
    ASSERT_TRUE(net::decodeRequestFrameHeader(
        frameA.data(), net::kRequestHeaderBytes, backA));
    ASSERT_TRUE(net::decodeRequestFrameHeader(
        frameB.data(), net::kRequestHeaderBytes, backB));
    EXPECT_EQ(backA.requestId, backB.requestId);
    EXPECT_NE(backA.tenantId, backB.tenantId);

    // Overwrite the tenant word (bytes [16, 24)): the request id, method,
    // and priority must decode unchanged.
    auto mangled = frameA;
    for (std::size_t i = 16; i < 24; ++i) {
      mangled[i] = static_cast<std::uint8_t>(rng.next());
    }
    net::RequestFrameHeader backM;
    ASSERT_TRUE(net::decodeRequestFrameHeader(
        mangled.data(), net::kRequestHeaderBytes, backM));
    EXPECT_EQ(backM.requestId, a.requestId);
    EXPECT_EQ(backM.methodId, a.methodId);
    EXPECT_EQ(backM.priority, a.priority);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz, ::testing::Range(1, 6));

}  // namespace
}  // namespace vcad::rmi
