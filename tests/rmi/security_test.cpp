#include "rmi/security.hpp"

#include <gtest/gtest.h>

namespace vcad::rmi {
namespace {

Request portLevelRequest() {
  Request r;
  r.method = MethodId::EstimatePower;
  r.component = "MULT";
  r.args.addU64(16)
      .addWord(Word::fromUint(16, 0xBEEF))
      .addWordVector({Word::fromUint(16, 1), Word::fromUint(16, 2)})
      .addString("avg_power")
      .addDouble(0.5);
  return r;
}

TEST(MarshalFilter, AdmitsPortLevelInformation) {
  LogSink audit;
  MarshalFilter filter(&audit);
  EXPECT_TRUE(filter.admit(portLevelRequest()));
  EXPECT_EQ(audit.count(Severity::Security), 0u);
}

TEST(MarshalFilter, RejectsDesignGraphAnywhereInPayload) {
  LogSink audit;
  MarshalFilter filter(&audit);
  Request r = portLevelRequest();
  r.args.addDesignGraph("REGA->MULT->OUT topology dump");
  EXPECT_FALSE(filter.admit(r));
  EXPECT_EQ(audit.count(Severity::Security), 1u);
  const auto entries = audit.entries();
  EXPECT_NE(entries[0].message.find("EstimatePower"), std::string::npos);
}

TEST(MarshalFilter, RejectsLeadingDesignGraph) {
  MarshalFilter filter;
  Request r;
  r.method = MethodId::EvalFunction;
  r.args.addDesignGraph("neighbour modules");
  EXPECT_FALSE(filter.admit(r));
}

TEST(MarshalFilter, EmptyArgsAdmitted) {
  MarshalFilter filter;
  Request r;
  r.method = MethodId::GetFaultList;
  EXPECT_TRUE(filter.admit(r));
}

TEST(Sandbox, DefaultDeniesEverything) {
  LogSink audit;
  Sandbox sandbox(Capabilities{}, &audit);
  EXPECT_THROW(sandbox.requireFileSystem("mult-public-part"),
               SecurityViolationError);
  EXPECT_THROW(sandbox.requireDesignIntrospection("mult-public-part"),
               SecurityViolationError);
  EXPECT_THROW(sandbox.requireNetwork("mult-public-part", "evil.example",
                                      "provider.host"),
               SecurityViolationError);
  EXPECT_EQ(audit.count(Severity::Security), 3u);
}

TEST(Sandbox, OriginServerAlwaysReachable) {
  // The standard RMI security manager lets downloaded methods communicate
  // with the provider's own server.
  Sandbox sandbox;
  EXPECT_NO_THROW(
      sandbox.requireNetwork("stub", "provider.host", "provider.host"));
}

TEST(Sandbox, UserCanRelaxRequirements) {
  Capabilities caps;
  caps.fileSystem = true;
  caps.arbitraryNetwork = true;
  Sandbox sandbox(caps);
  EXPECT_NO_THROW(sandbox.requireFileSystem("tool"));
  EXPECT_NO_THROW(sandbox.requireNetwork("tool", "other.host", "origin"));
  // Introspection stays denied unless granted explicitly.
  EXPECT_THROW(sandbox.requireDesignIntrospection("tool"),
               SecurityViolationError);
}

}  // namespace
}  // namespace vcad::rmi
