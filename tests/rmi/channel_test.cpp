#include "rmi/channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace vcad::rmi {
namespace {

/// Echo server: returns the request's first word argument; optionally burns
/// CPU to simulate server compute.
class EchoServer : public ServerEndpoint {
 public:
  explicit EchoServer(int busyLoops = 0) : busyLoops_(busyLoops) {}

  Response dispatch(const Request& request) override {
    ++dispatched;
    lastMethod = request.method;
    volatile double sink = 0;
    for (int i = 0; i < busyLoops_; ++i) sink = sink + i * 1e-9;
    Response r;
    Args args = request.args;
    r.payload.writeWord(args.takeWord());
    r.feeCents = 0.25;
    return r;
  }
  std::string hostName() const override { return "echo.host"; }

  int dispatched = 0;
  MethodId lastMethod = MethodId::OpenSession;

 private:
  int busyLoops_;
};

Request echoRequest(std::uint64_t value) {
  Request r;
  r.method = MethodId::EvalFunction;
  r.args.addWord(Word::fromUint(32, value));
  return r;
}

TEST(RmiChannel, RoundTripThroughMarshalling) {
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  Response resp = ch.call(echoRequest(0xCAFE));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.payload.readWord().toUint(), 0xCAFEu);
  EXPECT_EQ(server.dispatched, 1);
}

TEST(RmiChannel, StatsAccumulate) {
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::lan());
  for (int i = 0; i < 5; ++i) ch.call(echoRequest(i));
  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.calls, 5u);
  EXPECT_EQ(s.blockedCalls, 5u);
  EXPECT_GT(s.bytesSent, 0u);
  EXPECT_GT(s.bytesReceived, 0u);
  EXPECT_GT(s.blockingWallSec, 5 * 2 * 0.5e-3);  // >= 2 messages x latency
  EXPECT_DOUBLE_EQ(s.feesCents, 5 * 0.25);
}

TEST(RmiChannel, WanCostsMoreThanLan) {
  EchoServer s1, s2;
  RmiChannel lan(s1, net::NetworkProfile::lan());
  RmiChannel wan(s2, net::NetworkProfile::wan());
  for (int i = 0; i < 10; ++i) {
    lan.call(echoRequest(i));
    wan.call(echoRequest(i));
  }
  EXPECT_GT(wan.blockedWallSec(), lan.blockedWallSec());
}

TEST(RmiChannel, LargerPayloadsCostMoreOnWan) {
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::wan());
  Request small;
  small.method = MethodId::EstimatePower;
  small.args.addWord(Word::fromUint(8, 1));
  ch.call(small);
  const double afterSmall = ch.blockedWallSec();

  Request big;
  big.method = MethodId::EstimatePower;
  std::vector<Word> batch(2000, Word::fromUint(64, ~0ULL));
  big.args.addWord(Word::fromUint(8, 1));
  big.args.addWordVector(batch);
  // EchoServer reads only the first word; extra payload just rides along.
  ch.call(big);
  const double bigCost = ch.blockedWallSec() - afterSmall;
  EXPECT_GT(bigCost, afterSmall);
}

TEST(RmiChannel, SecurityRejectionNeverReachesServer) {
  LogSink audit;
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal(), &audit);
  Request bad = echoRequest(1);
  bad.args.addDesignGraph("the rest of the design");
  Response resp = ch.call(bad);
  EXPECT_EQ(resp.status, Status::SecurityViolation);
  EXPECT_EQ(server.dispatched, 0);
  EXPECT_EQ(ch.stats().securityRejections, 1u);
  // Rejected requests still count as calls (they are attempted client
  // requests), they just never produce traffic or reach the server.
  EXPECT_EQ(ch.stats().calls, 1u);
  EXPECT_EQ(ch.stats().bytesSent, 0u);
  EXPECT_EQ(audit.count(Severity::Security), 1u);
}

TEST(RmiChannel, AsyncCallsLandOnOverlapAccount) {
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::wan());
  auto fut = ch.callAsync(echoRequest(9));
  Response resp = fut.get();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(ch.stats().asyncCalls, 1u);
  EXPECT_EQ(ch.stats().blockedCalls, 0u);
  EXPECT_DOUBLE_EQ(ch.stats().blockingWallSec, 0.0);
  EXPECT_GT(ch.stats().nonblockingWallSec, 0.0);
}

TEST(RmiChannel, ConcurrentAsyncDispatchIsSerialized) {
  // EchoServer's counters are deliberately plain (non-atomic) ints: the
  // channel guarantees one in-flight dispatch at a time per channel, so
  // concurrent callAsync traffic must still count every request exactly
  // once (and TSan must stay quiet).
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  constexpr int kCalls = 64;
  std::vector<std::future<Response>> futures;
  futures.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(ch.callAsync(echoRequest(static_cast<std::uint64_t>(i))));
  }
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().ok());
  }
  EXPECT_EQ(server.dispatched, kCalls);
  EXPECT_EQ(ch.stats().calls, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(ch.stats().asyncCalls, static_cast<std::uint64_t>(kCalls));
}

TEST(RmiChannel, ServerCpuIsMeasured) {
  EchoServer busy(3000000);
  RmiChannel ch(busy, net::NetworkProfile::ideal());
  ch.call(echoRequest(1));
  EXPECT_GT(ch.stats().serverCpuSec, 0.0);
}

// --- unreliable transport: retry, timeout and idempotency-key behaviour ---

TEST(RmiChannelRetry, DropProfileRetriesUntilEveryCallDelivers) {
  EchoServer server;
  net::FaultyTransport transport(net::FaultProfile::drop(), 0xD00D);
  RmiChannel ch(server, net::NetworkProfile::ideal());
  ch.setFaultInjector(&transport);
  constexpr std::uint64_t kLogicalCalls = 20;
  for (std::uint64_t i = 0; i < kLogicalCalls; ++i) {
    // The caller contract for an exhausted budget: re-issue with the SAME
    // key, so the attempt schedule resumes instead of replaying.
    Request req = echoRequest(i);
    req.idempotencyKey = ch.makeKey();
    Response resp = ch.call(req);
    for (int round = 0; !resp.ok() && round < 4; ++round) resp = ch.call(req);
    ASSERT_TRUE(resp.ok()) << i;
  }
  const ChannelStats& s = ch.stats();
  EXPECT_GT(s.retries, 0u);
  EXPECT_GT(s.timeouts, 0u);
  // Every logical call eventually delivered, so transmissions = logical
  // calls + retries and also = deliveries + timeouts: the counters balance.
  EXPECT_EQ(s.retries, s.timeouts);
  EXPECT_EQ(s.calls, kLogicalCalls + s.transportFailures);
}

TEST(RmiChannelRetry, ExhaustedBudgetIsDeclaredTransportFailure) {
  EchoServer server;
  net::FaultProfile blackHole;
  blackHole.name = "black-hole";
  blackHole.dropRequestProb = 1.0;
  net::FaultyTransport transport(blackHole, 1);
  RmiChannel ch(server, net::NetworkProfile::ideal());
  ch.setFaultInjector(&transport);
  Response resp = ch.call(echoRequest(1));
  EXPECT_EQ(resp.status, Status::TransportFailure);
  EXPECT_EQ(server.dispatched, 0);  // nothing ever arrived
  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.calls, 1u);
  EXPECT_EQ(s.timeouts, static_cast<std::uint64_t>(ch.retryPolicy().maxAttempts));
  EXPECT_EQ(s.retries, static_cast<std::uint64_t>(ch.retryPolicy().maxAttempts - 1));
  EXPECT_EQ(s.transportFailures, 1u);
  EXPECT_DOUBLE_EQ(s.feesCents, 0.0);  // no delivery, no fee
}

TEST(RmiChannelRetry, ReissuedKeyResumesTheAttemptSchedule) {
  // The fault plan is a pure function of (seed, key, attempt): if a re-issue
  // of a failed key restarted at attempt 1, it would replay the exact drops
  // that killed it, forever. Find a key whose first attempt is faulted but
  // whose second is clean, cap the budget at one attempt, and verify the
  // second issue of the same key continues at attempt 2 — and succeeds.
  net::FaultyTransport transport(net::FaultProfile::drop(), 0xFACE);
  std::uint64_t key = 0;
  for (std::uint64_t k = 1; k < 4096; ++k) {
    const net::FaultPlan first = transport.peek(k, 1);
    if ((first.dropRequest || first.dropResponse) &&
        transport.peek(k, 2).clean()) {
      key = k;
      break;
    }
  }
  ASSERT_NE(key, 0u) << "no suitable key below 4096 for this seed";

  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  ch.setFaultInjector(&transport);
  RetryPolicy oneShot;
  oneShot.maxAttempts = 1;
  ch.setRetryPolicy(oneShot);

  Request req = echoRequest(0xAB);
  req.idempotencyKey = key;
  EXPECT_EQ(ch.call(req).status, Status::TransportFailure);
  Response second = ch.call(req);  // same key: resumes at attempt 2
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.payload.readWord().toUint(), 0xABu);
  // The resumed transmission counts as the retransmission it is.
  EXPECT_EQ(ch.stats().retries, 1u);
  EXPECT_EQ(ch.stats().transportFailures, 1u);
}

TEST(RmiChannelRetry, BackoffIsDeterministicCappedAndJittered) {
  RetryPolicy p;  // defaults: base 0.02, cap 0.5, jitter 0.25
  for (int attempt = 2; attempt <= 12; ++attempt) {
    const double a = p.backoffSec(77, attempt);
    EXPECT_EQ(a, p.backoffSec(77, attempt)) << "must be reproducible";
    const double nominal = std::min(
        p.backoffBaseSec * std::pow(2.0, static_cast<double>(attempt - 2)),
        p.backoffMaxSec);
    EXPECT_GE(a, nominal * (1.0 - p.backoffJitter)) << attempt;
    EXPECT_LE(a, nominal * (1.0 + p.backoffJitter)) << attempt;
  }
  // Jitter is keyed: two logical calls do not back off in lockstep.
  bool anyDifferent = false;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    if (p.backoffSec(77, attempt) != p.backoffSec(78, attempt)) {
      anyDifferent = true;
    }
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(RmiChannelRetry, DuplicateDeliveryReachesTheEndpointTwice) {
  // Duplicate suppression is the provider's job (replay cache), not the
  // endpoint's: a bare echo endpoint executes both copies, and the channel
  // counts no suppression because neither response was marked replayed.
  EchoServer server;
  net::FaultProfile dup;
  dup.name = "always-duplicate";
  dup.duplicateRequestProb = 1.0;
  net::FaultyTransport transport(dup, 1);
  RmiChannel ch(server, net::NetworkProfile::ideal());
  ch.setFaultInjector(&transport);
  Response resp = ch.call(echoRequest(5));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(server.dispatched, 2);
  EXPECT_EQ(ch.stats().duplicatesSuppressed, 0u);
  EXPECT_EQ(ch.stats().retries, 0u);
}

TEST(RmiChannelRetry, StallPastDeadlineTimesOutThoughServerExecuted) {
  // Timeout classification: a provider stall past the deadline is a client
  // timeout even though the server did the work — the dangerous case the
  // replay cache exists for.
  EchoServer server;
  net::FaultProfile frozen;
  frozen.name = "always-stall";
  frozen.stallProb = 1.0;
  frozen.stallSec = 2.0;  // >> default 0.25s deadline
  net::FaultyTransport transport(frozen, 1);
  RmiChannel ch(server, net::NetworkProfile::ideal());
  ch.setFaultInjector(&transport);
  RetryPolicy p;
  p.maxAttempts = 2;
  ch.setRetryPolicy(p);
  Response resp = ch.call(echoRequest(3));
  EXPECT_EQ(resp.status, Status::TransportFailure);
  EXPECT_EQ(server.dispatched, 2);  // executed on every attempt
  EXPECT_EQ(ch.stats().timeouts, 2u);
}

TEST(RmiChannelRetry, CorruptedRequestFramesNeverReachDispatch) {
  EchoServer server;
  net::FaultProfile mangle;
  mangle.name = "always-corrupt";
  mangle.corruptRequestProb = 1.0;
  net::FaultyTransport transport(mangle, 1);
  RmiChannel ch(server, net::NetworkProfile::ideal());
  ch.setFaultInjector(&transport);
  RetryPolicy p;
  p.maxAttempts = 3;
  ch.setRetryPolicy(p);
  Response resp = ch.call(echoRequest(3));
  EXPECT_EQ(resp.status, Status::TransportFailure);
  EXPECT_EQ(server.dispatched, 0);  // checksum rejected every frame
  EXPECT_EQ(ch.stats().corruptedFramesDropped, 3u);
  EXPECT_EQ(ch.stats().timeouts, 3u);
}

TEST(RmiChannel, SharedHostInflatesBlockingTime) {
  EchoServer busy1(3000000), busy2(3000000);
  RmiChannel localhost(busy1, net::NetworkProfile::localhost());
  RmiChannel lan(busy2, net::NetworkProfile::lan());
  localhost.call(echoRequest(1));
  lan.call(echoRequest(1));
  // Same compute, but the shared host charges contention on top, while the
  // LAN charges wire latency. With heavy compute, contention dominates.
  const double localWall = localhost.stats().blockingWallSec;
  const double localCpu = localhost.stats().serverCpuSec;
  EXPECT_GT(localWall, localCpu * 1.5);
}

}  // namespace
}  // namespace vcad::rmi
