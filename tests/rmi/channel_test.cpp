#include "rmi/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vcad::rmi {
namespace {

/// Echo server: returns the request's first word argument; optionally burns
/// CPU to simulate server compute.
class EchoServer : public ServerEndpoint {
 public:
  explicit EchoServer(int busyLoops = 0) : busyLoops_(busyLoops) {}

  Response dispatch(const Request& request) override {
    ++dispatched;
    lastMethod = request.method;
    volatile double sink = 0;
    for (int i = 0; i < busyLoops_; ++i) sink = sink + i * 1e-9;
    Response r;
    Args args = request.args;
    r.payload.writeWord(args.takeWord());
    r.feeCents = 0.25;
    return r;
  }
  std::string hostName() const override { return "echo.host"; }

  int dispatched = 0;
  MethodId lastMethod = MethodId::OpenSession;

 private:
  int busyLoops_;
};

Request echoRequest(std::uint64_t value) {
  Request r;
  r.method = MethodId::EvalFunction;
  r.args.addWord(Word::fromUint(32, value));
  return r;
}

TEST(RmiChannel, RoundTripThroughMarshalling) {
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  Response resp = ch.call(echoRequest(0xCAFE));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.payload.readWord().toUint(), 0xCAFEu);
  EXPECT_EQ(server.dispatched, 1);
}

TEST(RmiChannel, StatsAccumulate) {
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::lan());
  for (int i = 0; i < 5; ++i) ch.call(echoRequest(i));
  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.calls, 5u);
  EXPECT_EQ(s.blockedCalls, 5u);
  EXPECT_GT(s.bytesSent, 0u);
  EXPECT_GT(s.bytesReceived, 0u);
  EXPECT_GT(s.blockingWallSec, 5 * 2 * 0.5e-3);  // >= 2 messages x latency
  EXPECT_DOUBLE_EQ(s.feesCents, 5 * 0.25);
}

TEST(RmiChannel, WanCostsMoreThanLan) {
  EchoServer s1, s2;
  RmiChannel lan(s1, net::NetworkProfile::lan());
  RmiChannel wan(s2, net::NetworkProfile::wan());
  for (int i = 0; i < 10; ++i) {
    lan.call(echoRequest(i));
    wan.call(echoRequest(i));
  }
  EXPECT_GT(wan.blockedWallSec(), lan.blockedWallSec());
}

TEST(RmiChannel, LargerPayloadsCostMoreOnWan) {
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::wan());
  Request small;
  small.method = MethodId::EstimatePower;
  small.args.addWord(Word::fromUint(8, 1));
  ch.call(small);
  const double afterSmall = ch.blockedWallSec();

  Request big;
  big.method = MethodId::EstimatePower;
  std::vector<Word> batch(2000, Word::fromUint(64, ~0ULL));
  big.args.addWord(Word::fromUint(8, 1));
  big.args.addWordVector(batch);
  // EchoServer reads only the first word; extra payload just rides along.
  ch.call(big);
  const double bigCost = ch.blockedWallSec() - afterSmall;
  EXPECT_GT(bigCost, afterSmall);
}

TEST(RmiChannel, SecurityRejectionNeverReachesServer) {
  LogSink audit;
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal(), &audit);
  Request bad = echoRequest(1);
  bad.args.addDesignGraph("the rest of the design");
  Response resp = ch.call(bad);
  EXPECT_EQ(resp.status, Status::SecurityViolation);
  EXPECT_EQ(server.dispatched, 0);
  EXPECT_EQ(ch.stats().securityRejections, 1u);
  // Rejected requests still count as calls (they are attempted client
  // requests), they just never produce traffic or reach the server.
  EXPECT_EQ(ch.stats().calls, 1u);
  EXPECT_EQ(ch.stats().bytesSent, 0u);
  EXPECT_EQ(audit.count(Severity::Security), 1u);
}

TEST(RmiChannel, AsyncCallsLandOnOverlapAccount) {
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::wan());
  auto fut = ch.callAsync(echoRequest(9));
  Response resp = fut.get();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(ch.stats().asyncCalls, 1u);
  EXPECT_EQ(ch.stats().blockedCalls, 0u);
  EXPECT_DOUBLE_EQ(ch.stats().blockingWallSec, 0.0);
  EXPECT_GT(ch.stats().nonblockingWallSec, 0.0);
}

TEST(RmiChannel, ConcurrentAsyncDispatchIsSerialized) {
  // EchoServer's counters are deliberately plain (non-atomic) ints: the
  // channel guarantees one in-flight dispatch at a time per channel, so
  // concurrent callAsync traffic must still count every request exactly
  // once (and TSan must stay quiet).
  EchoServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  constexpr int kCalls = 64;
  std::vector<std::future<Response>> futures;
  futures.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(ch.callAsync(echoRequest(static_cast<std::uint64_t>(i))));
  }
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().ok());
  }
  EXPECT_EQ(server.dispatched, kCalls);
  EXPECT_EQ(ch.stats().calls, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(ch.stats().asyncCalls, static_cast<std::uint64_t>(kCalls));
}

TEST(RmiChannel, ServerCpuIsMeasured) {
  EchoServer busy(3000000);
  RmiChannel ch(busy, net::NetworkProfile::ideal());
  ch.call(echoRequest(1));
  EXPECT_GT(ch.stats().serverCpuSec, 0.0);
}

TEST(RmiChannel, SharedHostInflatesBlockingTime) {
  EchoServer busy1(3000000), busy2(3000000);
  RmiChannel localhost(busy1, net::NetworkProfile::localhost());
  RmiChannel lan(busy2, net::NetworkProfile::lan());
  localhost.call(echoRequest(1));
  lan.call(echoRequest(1));
  // Same compute, but the shared host charges contention on top, while the
  // LAN charges wire latency. With heavy compute, contention dominates.
  const double localWall = localhost.stats().blockingWallSec;
  const double localCpu = localhost.stats().serverCpuSec;
  EXPECT_GT(localWall, localCpu * 1.5);
}

}  // namespace
}  // namespace vcad::rmi
