// Completion-queue tests: the truly-async call path (submit / poll / wait /
// waitAny), the bounded worker pool that replaced thread-per-call
// std::async, and the regression tests for the RMI-layer bugfix sweep
// (resetStats race, callAsync thread bomb, mid-flight injector swap).
#include "rmi/channel.hpp"

#include <gtest/gtest.h>

#include "rmi/loopback_transport.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace vcad::rmi {
namespace {

/// Echo endpoint that records which OS threads dispatched it — a bounded
/// pool shows up as a bounded set of thread ids no matter how many calls
/// are pushed through.
class ThreadTrackingServer : public ServerEndpoint {
 public:
  Response dispatch(const Request& request) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      threadIds_.insert(std::this_thread::get_id());
      ++dispatched_;
    }
    Response r;
    Args args = request.args;
    r.payload.writeWord(args.takeWord());
    r.feeCents = 0.25;
    return r;
  }
  std::string hostName() const override { return "queue.host"; }

  std::size_t distinctThreads() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return threadIds_.size();
  }
  int dispatched() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dispatched_;
  }

 private:
  mutable std::mutex mutex_;
  std::set<std::thread::id> threadIds_;
  int dispatched_ = 0;
};

/// Endpoint whose dispatch blocks until released — for observing calls
/// while they are genuinely in flight.
class GatedServer : public ServerEndpoint {
 public:
  Response dispatch(const Request& request) override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    Response r;
    Args args = request.args;
    r.payload.writeWord(args.takeWord());
    return r;
  }
  std::string hostName() const override { return "gated.host"; }

  void awaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, n] { return entered_ >= n; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool released_ = false;
};

Request echoRequest(std::uint64_t value) {
  Request r;
  r.method = MethodId::EvalFunction;
  r.args.addWord(Word::fromUint(32, value));
  return r;
}

TEST(CompletionQueue, SubmitWaitRoundTrip) {
  ThreadTrackingServer server;
  RmiChannel ch(server, net::NetworkProfile::lan());
  RmiChannel::CallHandle h = ch.submit(echoRequest(0xBEEF));
  ASSERT_TRUE(h.valid());
  Response resp = ch.wait(h);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.payload.readWord().toUint(), 0xBEEFu);
  EXPECT_EQ(ch.stats().asyncCalls, 1u);
  EXPECT_EQ(ch.stats().blockedCalls, 0u);
  EXPECT_GT(ch.stats().nonblockingWallSec, 0.0);
  EXPECT_DOUBLE_EQ(ch.stats().blockingWallSec, 0.0);
}

TEST(CompletionQueue, PollClaimsExactlyOnce) {
  ThreadTrackingServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  RmiChannel::CallHandle h = ch.submit(echoRequest(7));
  Response resp;
  // Spin until the pool finishes the job; poll must never block.
  while (!ch.poll(h, &resp)) std::this_thread::yield();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.payload.readWord().toUint(), 7u);
  // The handle was claimed: a second poll reports nothing.
  EXPECT_FALSE(ch.poll(h, &resp));
  // And wait() on the claimed handle fails typed instead of deadlocking.
  EXPECT_EQ(ch.wait(h).status, Status::TransportFailure);
}

TEST(CompletionQueue, PollWithNullClaimsAndDiscards) {
  ThreadTrackingServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  RmiChannel::CallHandle h = ch.submit(echoRequest(1));
  while (!ch.poll(h, nullptr)) std::this_thread::yield();
  EXPECT_FALSE(ch.poll(h, nullptr));
  EXPECT_FALSE(ch.waitAny().has_value());  // nothing left in flight
}

TEST(CompletionQueue, WaitOnUnknownHandleFailsTyped) {
  ThreadTrackingServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  RmiChannel::CallHandle bogus;
  bogus.id = 999999;
  Response resp = ch.wait(bogus);
  EXPECT_EQ(resp.status, Status::TransportFailure);
  EXPECT_FALSE(ch.wait(RmiChannel::CallHandle{}).ok());
}

TEST(CompletionQueue, WaitAnyDrainsEveryHandleExactlyOnce) {
  ThreadTrackingServer server;
  RmiChannel ch(server, net::NetworkProfile::lan());
  constexpr int kCalls = 24;
  std::set<std::uint64_t> submitted;
  for (int i = 0; i < kCalls; ++i) {
    submitted.insert(ch.submit(echoRequest(i)).id);
  }
  ASSERT_EQ(submitted.size(), static_cast<std::size_t>(kCalls));
  std::set<std::uint64_t> claimed;
  for (int i = 0; i < kCalls; ++i) {
    auto done = ch.waitAny();
    ASSERT_TRUE(done.has_value());
    ASSERT_TRUE(done->second.ok());
    EXPECT_TRUE(submitted.count(done->first.id)) << done->first.id;
    EXPECT_TRUE(claimed.insert(done->first.id).second)
        << "handle claimed twice: " << done->first.id;
  }
  EXPECT_FALSE(ch.waitAny().has_value());
  EXPECT_EQ(server.dispatched(), kCalls);
  EXPECT_EQ(ch.stats().asyncCalls, static_cast<std::uint64_t>(kCalls));
}

// Regression (bugfix sweep): callAsync used to spawn one std::async thread
// per call — a campaign of thousands of estimation calls was a thread bomb.
// Now every path runs on the bounded pool: the endpoint must never see more
// distinct dispatching threads than the pool depth, however many calls fly.
TEST(CompletionQueue, CallAsyncRunsOnBoundedPoolNotThreadPerCall) {
  ThreadTrackingServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  constexpr int kCalls = 200;
  std::vector<std::future<Response>> futures;
  futures.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) futures.push_back(ch.callAsync(echoRequest(i)));
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  EXPECT_EQ(server.dispatched(), kCalls);
  EXPECT_LE(server.distinctThreads(), ch.maxInFlight());
  EXPECT_EQ(ch.stats().asyncCalls, static_cast<std::uint64_t>(kCalls));
}

TEST(CompletionQueue, SetMaxInFlightResizesThePool) {
  ThreadTrackingServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  ch.setMaxInFlight(2);
  EXPECT_EQ(ch.maxInFlight(), 2u);
  std::vector<RmiChannel::CallHandle> handles;
  for (int i = 0; i < 50; ++i) handles.push_back(ch.submit(echoRequest(i)));
  for (auto h : handles) ASSERT_TRUE(ch.wait(h).ok());
  EXPECT_LE(server.distinctThreads(), 2u);
  // Resize drains in-flight work first, so it is safe mid-session.
  ch.setMaxInFlight(0);
  EXPECT_GE(ch.maxInFlight(), 2u);  // back to the default depth
  ASSERT_TRUE(ch.wait(ch.submit(echoRequest(99))).ok());
}

TEST(CompletionQueue, InFlightCounterTracksLiveCalls) {
  GatedServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  EXPECT_EQ(ch.inFlightCalls(), 0);
  RmiChannel::CallHandle h = ch.submit(echoRequest(5));
  server.awaitEntered(1);  // the worker is now inside transact/dispatch
  EXPECT_GE(ch.inFlightCalls(), 1);
  server.release();
  ASSERT_TRUE(ch.wait(h).ok());
  EXPECT_EQ(ch.inFlightCalls(), 0);
  // With no calls in flight the injector swap is legal (the mid-flight case
  // trips the debug assertion and an audit error instead).
  ch.setFaultInjector(nullptr);
}

TEST(CompletionQueue, PipelinedSubmissionsOverlapOnTheWireAccount) {
  ThreadTrackingServer server;
  RmiChannel ch(server, net::NetworkProfile::wan());
  constexpr int kCalls = 8;
  std::vector<RmiChannel::CallHandle> handles;
  for (int i = 0; i < kCalls; ++i) handles.push_back(ch.submit(echoRequest(i)));
  for (auto h : handles) ASSERT_TRUE(ch.wait(h).ok());
  const ChannelStats& s = ch.stats();
  // Every overlapped round trip lands on the overlap account; the longest
  // single call bounds the fully-pipelined wall clock from below.
  EXPECT_GT(s.nonblockingWallSec, 0.0);
  EXPECT_GT(s.maxNonblockingCallSec, 0.0);
  EXPECT_LT(s.maxNonblockingCallSec, s.nonblockingWallSec);
  EXPECT_DOUBLE_EQ(s.blockingWallSec, 0.0);
}

// Regression (bugfix sweep): resetStats() used to clear ChannelStats without
// taking the stats mutex — racing a concurrent campaign's accounting writes.
// Run it repeatedly against live traffic; under TSan this test is the
// regression gate, everywhere else it still checks end-state coherence.
TEST(CompletionQueue, ResetStatsMidCampaignIsRaceFree) {
  ThreadTrackingServer server;
  RmiChannel ch(server, net::NetworkProfile::lan());
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 60;
  std::atomic<bool> done{false};
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&ch, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        Response resp = ch.call(echoRequest(t * 1000 + i));
        ASSERT_TRUE(resp.ok());
      }
    });
  }
  std::thread resetter([&ch, &done] {
    while (!done.load(std::memory_order_acquire)) {
      ch.resetStats();
      std::this_thread::yield();
    }
  });
  for (auto& t : callers) t.join();
  done.store(true, std::memory_order_release);
  resetter.join();
  EXPECT_EQ(server.dispatched(), kThreads * kCallsPerThread);
  // After a final reset the ledger reads as pristine — partial clears would
  // leave stale debris behind.
  ch.resetStats();
  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.calls, 0u);
  EXPECT_EQ(s.bytesSent, 0u);
  EXPECT_DOUBLE_EQ(s.blockingWallSec, 0.0);
  EXPECT_DOUBLE_EQ(s.feesCents, 0.0);
}

// waitAny under fire: concurrent submitters and concurrent waitAny
// consumers racing over a capped loopback, so completions are a mix of
// successes and typed admission sheds that burned their attempt budget.
// Under TSan this is the completion-queue concurrency gate; everywhere else
// it still proves exactly-once claiming and loss-free accounting.
TEST(CompletionQueue, WaitAnyStressMixesShedsAndSuccesses) {
  GatedServer server;
  RmiChannel ch(server, net::NetworkProfile::ideal());
  auto& loopback = dynamic_cast<LoopbackTransport&>(ch.wire());
  loopback.setMaxConcurrentDispatches(1);

  // Phase 1 — deterministic sheds: one call occupies the only dispatch
  // slot; every later call's every attempt sees the slot taken, sheds
  // with a typed TooManyPending, and fails after its whole budget.
  RmiChannel::CallHandle gated = ch.submit(echoRequest(0xAA));
  server.awaitEntered(1);
  constexpr int kShedCalls = 19;
  for (int i = 0; i < kShedCalls; ++i) ch.submit(echoRequest(i));
  for (int i = 0; i < kShedCalls; ++i) {
    auto done = ch.waitAny();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->second.status, Status::TransportFailure);
  }
  const int budget = ch.retryPolicy().maxAttempts;
  EXPECT_EQ(ch.stats().shedResponses,
            static_cast<std::uint64_t>(kShedCalls * budget));
  EXPECT_EQ(ch.stats().transportFailures,
            static_cast<std::uint64_t>(kShedCalls));
  server.release();
  ASSERT_TRUE(ch.wait(gated).ok());

  // Phase 2 — the race: submitters and waitAny consumers run concurrently
  // against the still-capped transport. Outcomes are timing-dependent
  // (collisions shed and may exhaust the budget), but every submission must
  // be claimed exactly once and the ok/fail split must add up.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 45;
  constexpr int kTotal = kThreads * kPerThread;
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&ch, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ch.submit(echoRequest(t * 1000 + i));
      }
    });
  }
  std::atomic<int> claimed{0};
  std::atomic<int> okCount{0};
  std::atomic<int> failCount{0};
  std::mutex claimMutex;
  std::set<std::uint64_t> claimedIds;
  std::atomic<bool> doubleClaim{false};
  auto consume = [&] {
    while (claimed.load(std::memory_order_acquire) < kTotal) {
      auto done = ch.waitAny();
      if (!done.has_value()) {
        std::this_thread::yield();  // submitters may not have caught up yet
        continue;
      }
      claimed.fetch_add(1, std::memory_order_acq_rel);
      if (done->second.ok()) {
        ++okCount;
      } else {
        EXPECT_EQ(done->second.status, Status::TransportFailure);
        ++failCount;
      }
      std::lock_guard<std::mutex> lock(claimMutex);
      if (!claimedIds.insert(done->first.id).second) doubleClaim = true;
    }
  };
  std::thread consumerA(consume);
  std::thread consumerB(consume);
  for (auto& t : submitters) t.join();
  consumerA.join();
  consumerB.join();
  EXPECT_FALSE(doubleClaim.load()) << "a handle was claimed twice";
  EXPECT_EQ(claimedIds.size(), static_cast<std::size_t>(kTotal));
  EXPECT_EQ(okCount.load() + failCount.load(), kTotal);
  EXPECT_GE(okCount.load(), 1);  // the cap sheds, it does not starve
  EXPECT_FALSE(ch.waitAny().has_value());  // nothing left in flight
  EXPECT_EQ(ch.stats().asyncCalls,
            static_cast<std::uint64_t>(1 + kShedCalls + kTotal));
}

// Destroying a channel with submitted-but-unclaimed work must not hang or
// crash: queued future-shim jobs get a typed broken-promise response.
TEST(CompletionQueue, DestructionWithPendingWorkIsClean) {
  GatedServer server;
  std::future<Response> orphan;
  {
    RmiChannel ch(server, net::NetworkProfile::ideal());
    ch.setMaxInFlight(1);
    RmiChannel::CallHandle inFlight = ch.submit(echoRequest(1));
    server.awaitEntered(1);
    orphan = ch.callAsync(echoRequest(2));  // stuck behind the gated call
    server.release();
    ASSERT_TRUE(ch.wait(inFlight).ok());
    // `orphan` may or may not have started; the destructor must settle it.
  }
  Response resp = orphan.get();
  // Either the pool got to it before teardown (ok) or the destructor broke
  // it with a typed failure — never a std::broken_promise throw.
  if (!resp.ok()) {
    EXPECT_EQ(resp.status, Status::TransportFailure);
  }
}

}  // namespace
}  // namespace vcad::rmi
