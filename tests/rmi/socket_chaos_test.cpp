// Socket-backend tests: the framed SocketTransport demux driven raw over a
// socketpair, the provider socket front end's typed statuses, and the
// two-process chaos sweep — a real provider process behind a Unix-domain
// socket must produce bit-identical coverage, fees, and deterministic
// networkSec to the in-process loopback run for every shipped fault
// profile × seed, including a mid-run provider restart and the
// completion-queue call path.
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ip/provider_socket.hpp"
#include "net/socket_transport.hpp"
#include "net/transport.hpp"
#include "rmi/chaos_harness.hpp"

extern char** environ;

namespace vcad {
namespace {

using chaos::ChaosOutcome;
using chaos::ChaosRig;

// --- raw-frame helpers ----------------------------------------------------

std::vector<std::uint8_t> responseFrame(std::uint64_t requestId,
                                        net::FrameStatus status,
                                        const std::vector<std::uint8_t>& body) {
  net::ResponseFrameHeader h;
  h.status = status;
  h.requestId = requestId;
  h.serverCpuNanos = 42;
  return net::encodeResponseFrame(h, body);
}

void writeAll(int fd, const std::vector<std::uint8_t>& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
}

/// Builds the 32-byte request header for a raw transport send (anonymous
/// tenant, default Query priority — these tests exercise framing, not
/// admission).
void sendRaw(net::Transport& transport, std::uint32_t methodId,
             std::uint64_t requestId, const std::vector<std::uint8_t>& body) {
  net::RequestFrameHeader h;
  h.methodId = methodId;
  h.requestId = requestId;
  transport.send(h, body);
}

/// Drains the request frame the transport under test wrote to the peer end
/// (and sanity-checks its header on the way past).
void drainRequestFrame(int peerFd, std::uint64_t expectId) {
  std::vector<std::uint8_t> header(net::kRequestHeaderBytes);
  std::size_t got = 0;
  while (got < header.size()) {
    const ssize_t r = ::read(peerFd, header.data() + got, header.size() - got);
    ASSERT_GT(r, 0);
    got += static_cast<std::size_t>(r);
  }
  net::RequestFrameHeader h;
  ASSERT_TRUE(net::decodeRequestFrameHeader(header.data(), header.size(), h));
  EXPECT_EQ(h.requestId, expectId);
  std::vector<std::uint8_t> payload(h.payloadBytes);
  got = 0;
  while (got < payload.size()) {
    const ssize_t r = ::read(peerFd, payload.data() + got, payload.size() - got);
    ASSERT_GT(r, 0);
    got += static_cast<std::size_t>(r);
  }
}

template <typename Pred>
bool eventually(Pred pred, double timeoutSec = 2.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSec);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// --- SocketTransport demux (driven raw over a socketpair) -----------------

struct PairedTransport {
  int peerFd = -1;
  std::unique_ptr<net::SocketTransport> transport;

  PairedTransport() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    transport = std::make_unique<net::SocketTransport>(fds[0], "pair");
    peerFd = fds[1];
  }
  ~PairedTransport() {
    if (peerFd >= 0) ::close(peerFd);
  }
};

TEST(SocketFraming, OutOfOrderRepliesMatchByRequestId) {
  PairedTransport pair;
  const std::vector<std::uint8_t> bodyA = {1, 2, 3};
  const std::vector<std::uint8_t> bodyB = {9, 8, 7, 6};
  sendRaw(*pair.transport, 3, 101, bodyA);
  sendRaw(*pair.transport, 3, 102, bodyB);
  drainRequestFrame(pair.peerFd, 101);
  drainRequestFrame(pair.peerFd, 102);
  // Answer in reverse order: the demux must route each reply to its id.
  writeAll(pair.peerFd, responseFrame(102, net::FrameStatus::Ok, bodyB));
  writeAll(pair.peerFd, responseFrame(101, net::FrameStatus::Ok, bodyA));
  net::TransportReply a = pair.transport->awaitReply(101, 2.0);
  net::TransportReply b = pair.transport->awaitReply(102, 2.0);
  ASSERT_TRUE(a.delivered);
  ASSERT_TRUE(b.delivered);
  EXPECT_EQ(a.sealedPayload, bodyA);
  EXPECT_EQ(b.sealedPayload, bodyB);
  EXPECT_EQ(pair.transport->stats().unknownRequestIdFrames, 0u);
  EXPECT_EQ(pair.transport->stats().framesReceived, 2u);
}

TEST(SocketFraming, UnknownRequestIdFramesAreDroppedAndCounted) {
  PairedTransport pair;
  sendRaw(*pair.transport, 1, 50, {0xAA});
  drainRequestFrame(pair.peerFd, 50);
  // A reply for an id nobody registered: stale retransmission answer or
  // hostile injection. It must never surface to a caller.
  writeAll(pair.peerFd, responseFrame(9999, net::FrameStatus::Ok, {0xFF}));
  writeAll(pair.peerFd, responseFrame(50, net::FrameStatus::Ok, {0xAA}));
  net::TransportReply r = pair.transport->awaitReply(50, 2.0);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.sealedPayload, std::vector<std::uint8_t>({0xAA}));
  ASSERT_TRUE(eventually([&] {
    return pair.transport->stats().unknownRequestIdFrames == 1;
  }));
  // Discarded ids forget their registration: a late frame for them is
  // unknown too, not delivered to the next unlucky caller.
  pair.transport->discard(50);
  writeAll(pair.peerFd, responseFrame(50, net::FrameStatus::Ok, {0xBB}));
  ASSERT_TRUE(eventually([&] {
    return pair.transport->stats().unknownRequestIdFrames == 2;
  }));
}

TEST(SocketFraming, DuplicateRepliesAreBothDeliveredInOrder) {
  PairedTransport pair;
  sendRaw(*pair.transport, 2, 77, {0x01});
  drainRequestFrame(pair.peerFd, 77);
  // The channel's duplicateRequest chaos sends one id twice and expects to
  // collect both answers (the second flags the provider's replay cache).
  writeAll(pair.peerFd, responseFrame(77, net::FrameStatus::Ok, {0x01}));
  writeAll(pair.peerFd, responseFrame(77, net::FrameStatus::Ok, {0x02}));
  net::TransportReply first = pair.transport->awaitReply(77, 2.0);
  net::TransportReply second = pair.transport->awaitReply(77, 2.0);
  ASSERT_TRUE(first.delivered);
  ASSERT_TRUE(second.delivered);
  EXPECT_EQ(first.sealedPayload, std::vector<std::uint8_t>({0x01}));
  EXPECT_EQ(second.sealedPayload, std::vector<std::uint8_t>({0x02}));
}

TEST(SocketFraming, NonOkStatusRepliesAreCountedAsRejected) {
  PairedTransport pair;
  sendRaw(*pair.transport, 1, 11, {});
  drainRequestFrame(pair.peerFd, 11);
  writeAll(pair.peerFd,
           responseFrame(11, net::FrameStatus::TooManyPending, {}));
  net::TransportReply r = pair.transport->awaitReply(11, 2.0);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.status, net::FrameStatus::TooManyPending);
  EXPECT_EQ(pair.transport->stats().rejectedReplies, 1u);
}

TEST(SocketFraming, MalformedHeaderKillsTheWire) {
  PairedTransport pair;
  // 28 bytes of garbage: the response magic cannot decode, and a byte
  // stream that lost framing has no recoverable resync point.
  std::vector<std::uint8_t> junk(net::kResponseHeaderBytes, 0x5A);
  writeAll(pair.peerFd, junk);
  ASSERT_TRUE(eventually([&] { return !pair.transport->alive(); }));
  EXPECT_EQ(pair.transport->stats().malformedFrames, 1u);
  // A dead wire delivers nothing — and does not hang the caller.
  net::TransportReply r = pair.transport->awaitReply(1, 0.1);
  EXPECT_FALSE(r.delivered);
}

TEST(SocketFraming, TruncatedHeaderAtEofNeverDelivers) {
  PairedTransport pair;
  // A partial header followed by EOF: plain connection death, not a decode
  // error — nothing may be delivered or misread.
  net::ResponseFrameHeader h;
  h.requestId = 5;
  const auto frame = net::encodeResponseFrame(h, {});
  std::vector<std::uint8_t> prefix(frame.begin(), frame.begin() + 10);
  writeAll(pair.peerFd, prefix);
  ::close(pair.peerFd);
  pair.peerFd = -1;
  ASSERT_TRUE(eventually([&] { return !pair.transport->alive(); }));
  EXPECT_EQ(pair.transport->stats().malformedFrames, 0u);
  EXPECT_EQ(pair.transport->stats().framesReceived, 0u);
  EXPECT_FALSE(pair.transport->awaitReply(5, 0.1).delivered);
}

TEST(SocketFraming, AwaitDeadlineExpiresCleanly) {
  PairedTransport pair;
  const auto start = std::chrono::steady_clock::now();
  net::TransportReply r = pair.transport->awaitReply(123, 0.05);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(r.delivered);
  EXPECT_GE(waited, 0.04);
  EXPECT_LT(waited, 1.0);
  EXPECT_TRUE(pair.transport->alive());  // a timeout is not a wire death
}

// --- provider socket front end --------------------------------------------

/// Endpoint whose dispatch blocks until released (to hold the admission
/// window open) and echoes the request's first word.
class GatedEndpoint : public rmi::ServerEndpoint {
 public:
  rmi::Response dispatch(const rmi::Request& request) override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    rmi::Response r;
    rmi::Args args = request.args;
    r.payload.writeWord(args.takeWord());
    return r;
  }
  std::string hostName() const override { return "gated.host"; }
  void awaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, n] { return entered_ >= n; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool released_ = false;
};

std::vector<std::uint8_t> sealedEchoRequest(std::uint64_t value) {
  rmi::Request r;
  r.method = rmi::MethodId::EvalFunction;
  r.args.addWord(Word::fromUint(32, value));
  std::vector<std::uint8_t> bytes = r.marshal().bytes();
  net::sealFrame(bytes);
  return bytes;
}

TEST(ProviderSocket, ShedsWithTypedTooManyPendingStatus) {
  GatedEndpoint endpoint;
  ip::ProviderSocketServer server(endpoint);
  const std::uint16_t port = server.listenTcp(0);
  ASSERT_NE(port, 0);
  server.setMaxConcurrentDispatches(1);
  server.start();

  auto busy = net::SocketTransport::connectTcp("127.0.0.1", port);
  auto shed = net::SocketTransport::connectTcp("127.0.0.1", port);
  ASSERT_NE(busy, nullptr);
  ASSERT_NE(shed, nullptr);
  sendRaw(*busy, 5, 1, sealedEchoRequest(0xAB));
  endpoint.awaitEntered(1);  // the only dispatch slot is now occupied
  sendRaw(*shed, 5, 2, sealedEchoRequest(0xCD));
  net::TransportReply rejected = shed->awaitReply(2, 5.0);
  ASSERT_TRUE(rejected.delivered);
  EXPECT_EQ(rejected.status, net::FrameStatus::TooManyPending);
  endpoint.release();
  net::TransportReply served = busy->awaitReply(1, 5.0);
  ASSERT_TRUE(served.delivered);
  EXPECT_EQ(served.status, net::FrameStatus::Ok);
  // The reply frame can reach the client before the handler thread bumps
  // the serve counter — wait on the stats condition variable instead of
  // asserting the instant snapshot.
  EXPECT_TRUE(server.awaitStats(
      [](const ip::ProviderSocketServer::Stats& s) {
        return s.framesServed == 1;
      },
      2.0));
  EXPECT_EQ(server.stats().shedRequests, 1u);
  server.stop();
}

TEST(ProviderSocket, ChecksumFailureIsSilentlyDiscarded) {
  GatedEndpoint endpoint;
  endpoint.release();  // never gate in this test
  ip::ProviderSocketServer server(endpoint);
  const std::uint16_t port = server.listenTcp(0);
  ASSERT_NE(port, 0);
  server.start();
  auto transport = net::SocketTransport::connectTcp("127.0.0.1", port);
  ASSERT_NE(transport, nullptr);
  // Valid frame, damaged sealed payload: emulated wire damage. The server
  // must stay silent (the client's deadline owns the outcome).
  std::vector<std::uint8_t> damaged = sealedEchoRequest(0x11);
  damaged.back() ^= 0xFF;
  sendRaw(*transport, 5, 9, damaged);
  EXPECT_FALSE(transport->awaitReply(9, 0.2).delivered);
  ASSERT_TRUE(server.awaitStats(
      [](const ip::ProviderSocketServer::Stats& s) {
        return s.discardedFrames == 1;
      },
      2.0));
  EXPECT_EQ(server.stats().framesServed, 0u);
  // The connection survives: a follow-up intact request is served.
  sendRaw(*transport, 5, 10, sealedEchoRequest(0x22));
  net::TransportReply ok = transport->awaitReply(10, 5.0);
  ASSERT_TRUE(ok.delivered);
  EXPECT_EQ(ok.status, net::FrameStatus::Ok);
  server.stop();
}

TEST(ProviderSocket, UnparseableSealedPayloadGetsTypedReject) {
  GatedEndpoint endpoint;
  endpoint.release();
  ip::ProviderSocketServer server(endpoint);
  const std::uint16_t port = server.listenTcp(0);
  ASSERT_NE(port, 0);
  server.start();
  auto transport = net::SocketTransport::connectTcp("127.0.0.1", port);
  ASSERT_NE(transport, nullptr);
  // Correctly sealed junk: the checksum passes, the unmarshal cannot — a
  // protocol violation worth a typed answer, unlike wire damage.
  std::vector<std::uint8_t> junk = {0xDE, 0xAD, 0xBE, 0xEF};
  net::sealFrame(junk);
  sendRaw(*transport, 5, 3, junk);
  net::TransportReply r = transport->awaitReply(3, 5.0);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.status, net::FrameStatus::MalformedRequest);
  EXPECT_EQ(server.stats().malformedPayloads, 1u);
  server.stop();
}

// --- two-process chaos sweep ----------------------------------------------

/// A spawned chaos_provider_server process, lifetime-tied to a stdin pipe.
struct ProviderProcess {
  pid_t pid = -1;
  int toChild = -1;
  int fromChild = -1;

  bool start(const std::vector<std::string>& argv) {
    int inPipe[2];
    int outPipe[2];
    if (::pipe(inPipe) != 0) return false;
    if (::pipe(outPipe) != 0) {
      ::close(inPipe[0]);
      ::close(inPipe[1]);
      return false;
    }
    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    posix_spawn_file_actions_adddup2(&fa, inPipe[0], 0);
    posix_spawn_file_actions_adddup2(&fa, outPipe[1], 1);
    posix_spawn_file_actions_addclose(&fa, inPipe[1]);
    posix_spawn_file_actions_addclose(&fa, outPipe[0]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    const int rc =
        ::posix_spawn(&pid, argv[0].c_str(), &fa, nullptr, cargv.data(),
                      environ);
    posix_spawn_file_actions_destroy(&fa);
    ::close(inPipe[0]);
    ::close(outPipe[1]);
    if (rc != 0) {
      ::close(inPipe[1]);
      ::close(outPipe[0]);
      pid = -1;
      return false;
    }
    toChild = inPipe[1];
    fromChild = outPipe[0];
    // Readiness handshake: the provider prints READY once it listens.
    std::string line;
    char c;
    while (::read(fromChild, &c, 1) == 1) {
      if (c == '\n') break;
      line.push_back(c);
    }
    return line == "READY";
  }

  int stop() {
    if (toChild >= 0) {
      ::close(toChild);  // stdin EOF: the provider shuts down and exits
      toChild = -1;
    }
    int status = -1;
    if (pid > 0) {
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
    if (fromChild >= 0) {
      ::close(fromChild);
      fromChild = -1;
    }
    return status;
  }

  ~ProviderProcess() { stop(); }
};

std::string uniqueSocketPath() {
  static int counter = 0;
  return "chaos_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

/// Runs the chaos campaign against a spawned provider process over a
/// Unix-domain SocketTransport — the two-process mirror of the in-process
/// ChaosRig, sharing its seeds, profile machinery, and pattern set.
ChaosOutcome runSocketChaosCampaign(const net::FaultProfile& profile,
                                    std::uint64_t seed, int patternCount,
                                    std::uint64_t restartAfter, bool viaQueue,
                                    std::string* providerTraceJson = nullptr) {
  const std::string path = uniqueSocketPath();
  std::vector<std::string> argv = {"./chaos_provider_server", path};
  if (restartAfter != 0) {
    argv.push_back("--restart-after");
    argv.push_back(std::to_string(restartAfter));
  }
  const std::string tracePath = path + ".trace.json";
  if (providerTraceJson != nullptr) {
    argv.push_back("--trace-out");
    argv.push_back(tracePath);
  }
  ProviderProcess process;
  EXPECT_TRUE(process.start(argv)) << "failed to spawn chaos_provider_server";

  ChaosOutcome out;
  out.profileName = profile.name;
  out.seed = seed;
  {
    net::FaultyTransport injector(profile, seed);
    auto transport = net::SocketTransport::connectUnix(path);
    EXPECT_NE(transport, nullptr);
    if (transport == nullptr) return out;
    rmi::RmiChannel channel(std::move(transport), net::NetworkProfile::wan(),
                            nullptr, ChaosRig::kChannelSeed);
    channel.setFaultInjector(&injector);
    ip::ProviderHandle provider(
        channel, viaQueue ? ip::ProviderHandle::CallMode::CompletionQueue
                          : ip::ProviderHandle::CallMode::Blocking);
    Circuit circuit("chaosFault");
    auto& a = circuit.makeWord(ChaosRig::kW, "a");
    auto& b = circuit.makeWord(ChaosRig::kW, "b");
    auto& o = circuit.makeWord(2 * ChaosRig::kW, "o");
    chaos::ChaosPublicPartSource source;
    ip::RemoteConfig cfg;
    cfg.collectPower = false;
    // The provider lives in another process: the public part must come from
    // an explicit local source, not loopback discovery.
    cfg.publicPartSource = &source;
    auto* mult = &circuit.make<ip::RemoteComponent>(
        "MULT", provider, "MultFastLowPower", ChaosRig::kW,
        std::vector<std::pair<std::string, Connector*>>{{"a", &a}, {"b", &b}},
        std::vector<std::pair<std::string, Connector*>>{{"o", &o}}, cfg);
    ip::RemoteFaultClient client(*mult);
    std::vector<Connector*> pis = {&a, &b};
    std::vector<Connector*> pos = {&o};
    fault::VirtualFaultSimulator sim(circuit, {&client}, pis, pos);
    out.result = sim.run(chaos::chaosPatterns(patternCount));
    out.stats = channel.stats();
    out.transport = injector.stats();
    out.recoveries = provider.recoveries();
    out.remoteErrors = mult->remoteErrors();
  }
  const int status = process.stop();
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "provider exit status " << status;
  if (providerTraceJson != nullptr) {
    std::ifstream in(tracePath);
    std::stringstream ss;
    ss << in.rdbuf();
    *providerTraceJson = ss.str();
    std::remove(tracePath.c_str());
  }
  return out;
}

/// The bit-identity contract between two chaos runs: everything the
/// simulation decided and everything deterministically charged must match
/// exactly. Measured wall/CPU seconds are excluded by design (they are real
/// time); the blocked/async call split is compared only when both runs use
/// the same call mode.
void expectBitIdentical(const ChaosOutcome& base, const ChaosOutcome& got,
                        bool compareCallSplit) {
  SCOPED_TRACE("profile=" + base.profileName +
               " seed=" + std::to_string(base.seed));
  EXPECT_EQ(base.result.faultList, got.result.faultList);
  EXPECT_EQ(base.result.detected, got.result.detected);
  EXPECT_EQ(base.result.detectedAfterPattern, got.result.detectedAfterPattern);
  EXPECT_EQ(base.result.detectionTablesRequested,
            got.result.detectionTablesRequested);
  EXPECT_EQ(base.result.tableFetchRoundTrips, got.result.tableFetchRoundTrips);
  EXPECT_EQ(base.stats.calls, got.stats.calls);
  if (compareCallSplit) {
    EXPECT_EQ(base.stats.blockedCalls, got.stats.blockedCalls);
    EXPECT_EQ(base.stats.asyncCalls, got.stats.asyncCalls);
  }
  EXPECT_EQ(base.stats.securityRejections, got.stats.securityRejections);
  EXPECT_EQ(base.stats.bytesSent, got.stats.bytesSent);
  EXPECT_EQ(base.stats.bytesReceived, got.stats.bytesReceived);
  EXPECT_EQ(base.stats.retries, got.stats.retries);
  EXPECT_EQ(base.stats.timeouts, got.stats.timeouts);
  EXPECT_EQ(base.stats.duplicatesSuppressed, got.stats.duplicatesSuppressed);
  EXPECT_EQ(base.stats.corruptedFramesDropped,
            got.stats.corruptedFramesDropped);
  EXPECT_EQ(base.stats.transportFailures, got.stats.transportFailures);
  EXPECT_DOUBLE_EQ(base.stats.feesCents, got.stats.feesCents);
  EXPECT_DOUBLE_EQ(base.stats.networkSec, got.stats.networkSec);
  EXPECT_EQ(base.transport.attempts, got.transport.attempts);
  EXPECT_EQ(base.transport.droppedRequests, got.transport.droppedRequests);
  EXPECT_EQ(base.transport.droppedResponses, got.transport.droppedResponses);
  EXPECT_EQ(base.transport.duplicatedRequests,
            got.transport.duplicatedRequests);
  EXPECT_EQ(base.transport.corruptedRequests, got.transport.corruptedRequests);
  EXPECT_EQ(base.transport.corruptedResponses,
            got.transport.corruptedResponses);
  EXPECT_EQ(base.transport.reorders, got.transport.reorders);
  EXPECT_EQ(base.transport.stalls, got.transport.stalls);
  EXPECT_EQ(base.recoveries, got.recoveries);
  EXPECT_EQ(base.remoteErrors, got.remoteErrors);
}

/// One shipped profile per parameter value, swept over two seeds: the
/// two-process socket run must be indistinguishable from the in-process run
/// in every deterministic quantity.
class TwoProcessChaos : public ::testing::TestWithParam<int> {};

TEST_P(TwoProcessChaos, BitIdenticalToInProcessRun) {
  const std::vector<net::FaultProfile> profiles = net::FaultProfile::shipped();
  ASSERT_LT(static_cast<std::size_t>(GetParam()), profiles.size());
  const net::FaultProfile& profile = profiles[GetParam()];
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    ChaosOutcome base = chaos::runChaosCampaign(profile, seed);
    ChaosOutcome socket = runSocketChaosCampaign(profile, seed,
                                                 /*patternCount=*/6,
                                                 /*restartAfter=*/0,
                                                 /*viaQueue=*/false);
    expectBitIdentical(base, socket, /*compareCallSplit=*/true);
    EXPECT_FALSE(socket.result.detected.empty())
        << chaos::chaosFailureReport(socket);
  }
}

INSTANTIATE_TEST_SUITE_P(ShippedProfiles, TwoProcessChaos,
                         ::testing::Range(0, 6));

TEST(TwoProcessChaosRestart, SurvivesMidRunProviderRestart) {
  // The provider process loses every session after its 7th dispatch; the
  // client must recover over the socket and still finish bit-identical to
  // the in-process restart run.
  const net::FaultProfile profile = net::FaultProfile::drop();
  constexpr std::uint64_t kSeed = 3;
  constexpr std::uint64_t kRestartAfter = 7;
  ChaosOutcome base = chaos::runChaosCampaign(profile, kSeed, 6, kRestartAfter);
  ASSERT_EQ(base.restarts, 1u);  // the crash point actually fired
  ChaosOutcome socket = runSocketChaosCampaign(profile, kSeed, 6,
                                               kRestartAfter,
                                               /*viaQueue=*/false);
  expectBitIdentical(base, socket, /*compareCallSplit=*/true);
  EXPECT_GE(socket.recoveries, 1u) << chaos::chaosFailureReport(socket);
  EXPECT_EQ(socket.remoteErrors, 0u);
}

TEST(TwoProcessChaosQueue, CompletionQueueOverSocketStaysBitIdentical) {
  // Hardest combination: completion-queue call path over the socket
  // backend, compared against the blocking in-process run. Serial
  // submit+wait traffic keeps the RNG consumption order identical, so
  // everything but the blocked/async call split must match exactly.
  const net::FaultProfile profile = net::FaultProfile::lossy();
  for (std::uint64_t seed : {1ULL, 4ULL}) {
    ChaosOutcome base = chaos::runChaosCampaign(profile, seed);
    ChaosOutcome socket = runSocketChaosCampaign(profile, seed, 6, 0,
                                                 /*viaQueue=*/true);
    expectBitIdentical(base, socket, /*compareCallSplit=*/false);
    EXPECT_EQ(socket.stats.blockedCalls, 0u);
    EXPECT_EQ(socket.stats.asyncCalls, socket.stats.calls);
  }
}

TEST(TwoProcessChaosTrace, FlowIdsStitchAcrossTheProcessBoundary) {
  // The client stamps each request with its channel span's flow id; the
  // provider process adopts it for the matching provider.dispatch span. The
  // two trace files must share ids, or cross-process stitching is broken.
  obs::Tracer& tracer = obs::Tracer::global();
  const bool wasEnabled = tracer.enabled();
  tracer.clear();
  tracer.setEnabled(true);
  std::string providerJson;
  ChaosOutcome socket =
      runSocketChaosCampaign(net::FaultProfile::none(), 1, 4, 0,
                             /*viaQueue=*/false, &providerJson);
  std::vector<obs::TraceEvent> clientEvents = tracer.collect();
  tracer.setEnabled(wasEnabled);
  ASSERT_FALSE(providerJson.empty());
  EXPECT_NE(providerJson.find("provider.dispatch"), std::string::npos);
  std::size_t flowBegins = 0;
  std::size_t stitched = 0;
  for (const obs::TraceEvent& ev : clientEvents) {
    if (ev.phase != obs::TraceEvent::Phase::FlowBegin || ev.id == 0) continue;
    ++flowBegins;
    char hex[32];
    std::snprintf(hex, sizeof(hex), "\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(ev.id));
    if (providerJson.find(hex) != std::string::npos) ++stitched;
  }
  ASSERT_GT(flowBegins, 0u);
  // Every client-side flow must reappear in the provider's trace.
  EXPECT_EQ(stitched, flowBegins);
  EXPECT_FALSE(socket.result.detected.empty());
}

}  // namespace
}  // namespace vcad
