// chaos_provider_server: a real provider process for the two-process socket
// chaos tests. Serves the chaos multiplier catalog over a Unix-domain
// socket and exits when stdin reaches EOF (the parent test closes the pipe).
//
//   chaos_provider_server <unix-socket-path> [--restart-after N]
//                         [--trace-out PATH]
//
// --restart-after N injects a provider crash/restart after the N-th
// dispatched request, exactly like the in-process chaos rig, so the
// two-process sweep can prove session recovery across a real process
// boundary. --trace-out dumps this process's Chrome trace on exit; the
// span-context ids the client ships inside each request stitch the
// provider.dispatch spans under the client's channel spans, and the socket
// test asserts that stitching survives the process hop.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "ip/provider_socket.hpp"
#include "obs/trace.hpp"
#include "rmi/chaos_harness.hpp"

int main(int argc, char** argv) {
  using namespace vcad;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <unix-socket-path> [--restart-after N] "
                 "[--trace-out PATH]\n",
                 argv[0]);
    return 2;
  }
  const std::string socketPath = argv[1];
  std::uint64_t restartAfter = 0;
  std::string traceOut;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--restart-after") == 0 && i + 1 < argc) {
      restartAfter = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      traceOut = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  if (!traceOut.empty()) {
    obs::Tracer::global().clear();
    obs::Tracer::global().setEnabled(true);
  }

  ip::ProviderServer server("chaos-provider.host", nullptr);
  chaos::registerChaosMultiplier(server);
  chaos::RestartingEndpoint endpoint(server, restartAfter);
  ip::ProviderSocketServer socket(endpoint, nullptr);
  if (!socket.listenUnix(socketPath)) {
    std::fprintf(stderr, "failed to listen on %s\n", socketPath.c_str());
    return 1;
  }
  socket.start();
  // Readiness handshake: the parent waits for this line before connecting.
  std::printf("READY\n");
  std::fflush(stdout);

  // Serve until the parent closes our stdin — a pipe-based lifetime tie
  // that also ends us if the parent dies.
  char buf[256];
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
  }
  socket.stop();

  if (!traceOut.empty()) {
    std::ofstream out(traceOut);
    out << obs::Tracer::global().toChromeJson();
  }
  return 0;
}
