// Chaos suite: the end-to-end robustness contract of the unreliable
// transport layer. One virtual fault campaign against a remote multiplier IP
// is run under every shipped FaultProfile × several transport seeds (plus
// mid-run provider restarts), and whatever the transport does, the coverage
// tables and fee ledgers must come out bit-identical to the ideal run. The
// turbulence is allowed to show up in exactly one place: the channel's
// retry/timeout/replay counters.
#include "chaos_harness.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vcad::chaos {
namespace {

/// Failed assertion parts recorded so far in the running test — lets a
/// helper detect that its own EXPECTs tripped.
int failedPartCount() {
  const testing::TestResult* result =
      testing::UnitTest::GetInstance()->current_test_info()->result();
  int failed = 0;
  for (int i = 0; i < result->total_part_count(); ++i) {
    if (result->GetTestPartResult(i).failed()) ++failed;
  }
  return failed;
}

/// The invariant every run must satisfy against the ideal-transport gold
/// outcome: same coverage, same fees, to the last bit. A broken invariant
/// additionally dumps the run's identity (profile, seed) and the tail of
/// its trace buffer, so the failing schedule can be replayed offline.
void expectMatchesGold(const ChaosOutcome& run, const ChaosOutcome& gold,
                       const std::string& label) {
  const int failedBefore = failedPartCount();
  EXPECT_EQ(run.result.faultList, gold.result.faultList) << label;
  EXPECT_EQ(run.result.detected, gold.result.detected) << label;
  EXPECT_EQ(run.result.detectedAfterPattern, gold.result.detectedAfterPattern)
      << label;
  // Bit-identical doubles, not EXPECT_DOUBLE_EQ: exactly-once execution means
  // the same fee terms accumulate in the same order on both sides.
  EXPECT_EQ(run.stats.feesCents, gold.stats.feesCents) << label;
  EXPECT_EQ(run.providerFeesCents, gold.providerFeesCents) << label;
  // Client and provider ledgers agree with each other, too.
  EXPECT_EQ(run.stats.feesCents, run.providerFeesCents) << label;
  EXPECT_EQ(run.remoteErrors, 0u) << label;
  if (failedPartCount() > failedBefore) {
    ADD_FAILURE() << chaosFailureReport(run);
  }
}

TEST(ChaosCampaign, IdealProfileIsQuietAndBillsBothLedgersEqually) {
  const ChaosOutcome gold = runChaosCampaign(net::FaultProfile::none(), 1);
  EXPECT_GT(gold.result.faultList.size(), 0u);
  EXPECT_GT(gold.result.detected.size(), 0u);
  EXPECT_GT(gold.stats.feesCents, 0.0);
  EXPECT_EQ(gold.stats.feesCents, gold.providerFeesCents);
  EXPECT_EQ(gold.stats.retries, 0u);
  EXPECT_EQ(gold.stats.timeouts, 0u);
  EXPECT_EQ(gold.stats.duplicatesSuppressed, 0u);
  EXPECT_EQ(gold.stats.corruptedFramesDropped, 0u);
  EXPECT_EQ(gold.stats.transportFailures, 0u);
  EXPECT_EQ(gold.transport.injected(), 0u);
  EXPECT_EQ(gold.recoveries, 0u);
  EXPECT_EQ(gold.remoteErrors, 0u);
}

TEST(ChaosCampaign, EveryShippedProfilePreservesResultsAndFees) {
  const ChaosOutcome gold = runChaosCampaign(net::FaultProfile::none(), 1);
  for (const net::FaultProfile& profile : net::FaultProfile::shipped()) {
    // Turbulence counters are summed over the seeds: one short run may
    // dodge a low-probability fault, but three seeded runs never all do
    // (and being seed-deterministic, this can never flake — only the
    // equality checks per run are the real contract).
    ChaosOutcome sum;
    for (std::uint64_t seed : {11u, 22u, 33u}) {
      const std::string label =
          "profile=" + profile.name + " seed=" + std::to_string(seed);
      const ChaosOutcome run = runChaosCampaign(profile, seed);
      expectMatchesGold(run, gold, label);
      sum.stats.retries += run.stats.retries;
      sum.stats.timeouts += run.stats.timeouts;
      sum.stats.duplicatesSuppressed += run.stats.duplicatesSuppressed;
      sum.stats.corruptedFramesDropped += run.stats.corruptedFramesDropped;
      sum.transport.droppedRequests += run.transport.injected();
    }
    // The profile actually struck — the equalities above were earned — and
    // the turbulence is visible where it should be: in the new ChannelStats
    // counters, per failure mode.
    EXPECT_GT(sum.transport.injected(), 0u) << profile.name;
    if (profile.name == "drop" || profile.name == "lossy") {
      EXPECT_GT(sum.stats.retries, 0u) << profile.name;
      EXPECT_GT(sum.stats.timeouts, 0u) << profile.name;
    }
    if (profile.name == "duplicate") {
      EXPECT_GT(sum.stats.duplicatesSuppressed, 0u) << profile.name;
    }
    if (profile.name == "corrupt") {
      EXPECT_GT(sum.stats.corruptedFramesDropped, 0u) << profile.name;
      EXPECT_GT(sum.stats.retries, 0u) << profile.name;
    }
    if (profile.name == "stall" || profile.name == "reorder") {
      // Stalled and stale responses surface as client deadline misses.
      EXPECT_GT(sum.stats.timeouts, 0u) << profile.name;
      EXPECT_GT(sum.stats.retries, 0u) << profile.name;
    }
  }
}

TEST(ChaosCampaign, SameSeedReplaysTheRunBitForBit) {
  const ChaosOutcome a = runChaosCampaign(net::FaultProfile::lossy(), 7);
  const ChaosOutcome b = runChaosCampaign(net::FaultProfile::lossy(), 7);
  EXPECT_EQ(a.result.faultList, b.result.faultList);
  EXPECT_EQ(a.result.detected, b.result.detected);
  EXPECT_EQ(a.result.detectedAfterPattern, b.result.detectedAfterPattern);
  // Every counter — and the simulated transport time, a double accumulated
  // across the whole run — replays exactly.
  EXPECT_EQ(a.stats.calls, b.stats.calls);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.timeouts, b.stats.timeouts);
  EXPECT_EQ(a.stats.duplicatesSuppressed, b.stats.duplicatesSuppressed);
  EXPECT_EQ(a.stats.corruptedFramesDropped, b.stats.corruptedFramesDropped);
  EXPECT_EQ(a.stats.transportFailures, b.stats.transportFailures);
  EXPECT_EQ(a.stats.bytesSent, b.stats.bytesSent);
  EXPECT_EQ(a.stats.bytesReceived, b.stats.bytesReceived);
  EXPECT_EQ(a.stats.networkSec, b.stats.networkSec);
  EXPECT_EQ(a.stats.feesCents, b.stats.feesCents);
  EXPECT_EQ(a.transport.attempts, b.transport.attempts);
  EXPECT_EQ(a.transport.injected(), b.transport.injected());
}

TEST(ChaosCampaign, ThreadCountDoesNotChangeTheFaultScheduleOrTheResult) {
  // The parallel engine issues all RMI from its coordinating thread, and the
  // fault plan is a pure function of (seed, key, attempt) — so sweeping the
  // worker count over a lossy transport must not move a single counter.
  const ChaosOutcome gold = runChaosCampaign(net::FaultProfile::none(), 1);
  ChaosOutcome first;
  bool haveFirst = false;
  for (std::size_t threads : {1u, 2u, 4u}) {
    const std::string label = "threads=" + std::to_string(threads);
    const ChaosOutcome run = runChaosCampaign(net::FaultProfile::lossy(), 5, 6,
                                              0, threads, /*batch=*/2);
    expectMatchesGold(run, gold, label);
    if (!haveFirst) {
      first = run;
      haveFirst = true;
      continue;
    }
    EXPECT_EQ(run.stats.calls, first.stats.calls) << label;
    EXPECT_EQ(run.stats.retries, first.stats.retries) << label;
    EXPECT_EQ(run.stats.timeouts, first.stats.timeouts) << label;
    EXPECT_EQ(run.stats.duplicatesSuppressed, first.stats.duplicatesSuppressed)
        << label;
    EXPECT_EQ(run.stats.networkSec, first.stats.networkSec) << label;
    EXPECT_EQ(run.transport.attempts, first.transport.attempts) << label;
    EXPECT_EQ(run.transport.injected(), first.transport.injected()) << label;
  }
}

TEST(ChaosCampaign, PooledInjectionIsBitIdenticalToSerialUnderChaos) {
  // The pooled phase-2 engine must reproduce the serial run to the last
  // counter — not just coverage, but the whole protocol/effort ledger —
  // under a faulty transport, for every worker count. Table fetches stay on
  // the coordinating thread, so the RMI fault schedule cannot move either.
  const ChaosOutcome serial = runChaosCampaign(net::FaultProfile::lossy(), 9);
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    const std::string label = "pooledWorkers=" + std::to_string(workers);
    const ChaosOutcome run = runChaosCampaign(net::FaultProfile::lossy(), 9, 6,
                                              0, 0, 1, nullptr, workers);
    EXPECT_EQ(run.result.faultList, serial.result.faultList) << label;
    EXPECT_EQ(run.result.detected, serial.result.detected) << label;
    EXPECT_EQ(run.result.detectedAfterPattern,
              serial.result.detectedAfterPattern)
        << label;
    EXPECT_EQ(run.result.detectionTablesRequested,
              serial.result.detectionTablesRequested)
        << label;
    EXPECT_EQ(run.result.tableFetchRoundTrips,
              serial.result.tableFetchRoundTrips)
        << label;
    EXPECT_EQ(run.result.tableCacheHits, serial.result.tableCacheHits)
        << label;
    EXPECT_EQ(run.result.injections, serial.result.injections) << label;
    EXPECT_EQ(run.stats.calls, serial.stats.calls) << label;
    EXPECT_EQ(run.stats.feesCents, serial.stats.feesCents) << label;
    EXPECT_EQ(run.stats.networkSec, serial.stats.networkSec) << label;
    EXPECT_EQ(run.remoteErrors, 0u) << label;
    // The pool actually ran with the requested shape, reusing its pinned
    // lanes instead of leasing a slot per injection.
    EXPECT_EQ(run.result.injectionWorkers, workers) << label;
    std::uint64_t laneSum = 0;
    for (std::uint64_t n : run.result.workerInjections) laneSum += n;
    EXPECT_EQ(laneSum, run.result.injections) << label;
    EXPECT_LE(run.result.slotsLeased, workers + 1) << label;
  }
}

TEST(ChaosCampaign, CampaignSurvivesProviderRestart) {
  // The provider crashes after its 5th dispatched request — past the
  // instantiation, mid fault characterization. The session manifest replays,
  // the instance rebinds, and the coverage tables still match the
  // undisturbed run exactly.
  const ChaosOutcome gold = runChaosCampaign(net::FaultProfile::none(), 1);
  const ChaosOutcome run =
      runChaosCampaign(net::FaultProfile::none(), 1, 6, /*restartAfter=*/5);
  EXPECT_EQ(run.restarts, 1u);
  EXPECT_GE(run.recoveries, 1u);
  EXPECT_EQ(run.result.faultList, gold.result.faultList);
  EXPECT_EQ(run.result.detected, gold.result.detected);
  EXPECT_EQ(run.result.detectedAfterPattern, gold.result.detectedAfterPattern);
  EXPECT_EQ(run.remoteErrors, 0u);
  // The recovered session re-instantiated, so it billed one extra
  // instantiation — but the client and provider ledgers still agree.
  EXPECT_GT(run.stats.feesCents, gold.stats.feesCents);
}

TEST(ChaosCampaign, RestartUnderLossyTransportStillConverges) {
  // Worst case: the provider restarts while the transport is dropping,
  // duplicating, corrupting and stalling messages. Recovery and retries
  // compose; the coverage result is still bit-identical.
  const ChaosOutcome gold = runChaosCampaign(net::FaultProfile::none(), 1);
  const ChaosOutcome run =
      runChaosCampaign(net::FaultProfile::lossy(), 13, 6, /*restartAfter=*/7);
  EXPECT_EQ(run.restarts, 1u);
  EXPECT_GE(run.recoveries, 1u);
  EXPECT_EQ(run.result.faultList, gold.result.faultList);
  EXPECT_EQ(run.result.detected, gold.result.detected);
  EXPECT_EQ(run.result.detectedAfterPattern, gold.result.detectedAfterPattern);
  EXPECT_EQ(run.remoteErrors, 0u);
}

TEST(ChaosCampaign, CompletionQueuePathIsBitIdenticalToBlockingPath) {
  // Every provider call routed through the channel's completion queue
  // (submit + wait) instead of the blocking path: same fault schedule, same
  // coverage, same ledgers, same deterministic networkSec — the turbulence
  // merely moves from the blocking account to the overlap account.
  for (const net::FaultProfile& profile : net::FaultProfile::shipped()) {
    for (std::uint64_t seed : {11u, 22u}) {
      const std::string label =
          "profile=" + profile.name + " seed=" + std::to_string(seed) +
          " viaQueue";
      const ChaosOutcome sync = runChaosCampaign(profile, seed);
      const ChaosOutcome queued = runChaosCampaign(profile, seed, 6, 0, 0, 1,
                                                   nullptr, 0, true,
                                                   /*viaQueue=*/true);
      EXPECT_EQ(queued.result.faultList, sync.result.faultList) << label;
      EXPECT_EQ(queued.result.detected, sync.result.detected) << label;
      EXPECT_EQ(queued.result.detectedAfterPattern,
                sync.result.detectedAfterPattern)
          << label;
      EXPECT_EQ(queued.stats.calls, sync.stats.calls) << label;
      EXPECT_EQ(queued.stats.retries, sync.stats.retries) << label;
      EXPECT_EQ(queued.stats.timeouts, sync.stats.timeouts) << label;
      EXPECT_EQ(queued.stats.duplicatesSuppressed,
                sync.stats.duplicatesSuppressed)
          << label;
      EXPECT_EQ(queued.stats.corruptedFramesDropped,
                sync.stats.corruptedFramesDropped)
          << label;
      EXPECT_EQ(queued.stats.transportFailures, sync.stats.transportFailures)
          << label;
      EXPECT_EQ(queued.stats.bytesSent, sync.stats.bytesSent) << label;
      EXPECT_EQ(queued.stats.bytesReceived, sync.stats.bytesReceived) << label;
      EXPECT_EQ(queued.stats.networkSec, sync.stats.networkSec) << label;
      EXPECT_EQ(queued.stats.feesCents, sync.stats.feesCents) << label;
      EXPECT_EQ(queued.providerFeesCents, sync.providerFeesCents) << label;
      EXPECT_EQ(queued.transport.attempts, sync.transport.attempts) << label;
      EXPECT_EQ(queued.transport.injected(), sync.transport.injected())
          << label;
      EXPECT_EQ(queued.remoteErrors, 0u) << label;
      // The split is the one permitted difference: queued traffic lands on
      // the overlap account, none of it on the blocking account.
      EXPECT_EQ(queued.stats.blockedCalls, 0u) << label;
      EXPECT_EQ(queued.stats.asyncCalls, queued.stats.calls) << label;
    }
  }
}

TEST(ChaosCampaign, CompletionQueuePathSurvivesProviderRestart) {
  // Session recovery composes with the completion-queue path: the recovery
  // probe and replay also ride the queue, and the outcome still matches the
  // undisturbed gold run.
  const ChaosOutcome gold = runChaosCampaign(net::FaultProfile::none(), 1);
  const ChaosOutcome run =
      runChaosCampaign(net::FaultProfile::lossy(), 13, 6, /*restartAfter=*/7,
                       0, 1, nullptr, 0, true, /*viaQueue=*/true);
  EXPECT_EQ(run.restarts, 1u);
  EXPECT_GE(run.recoveries, 1u);
  EXPECT_EQ(run.result.faultList, gold.result.faultList);
  EXPECT_EQ(run.result.detected, gold.result.detected);
  EXPECT_EQ(run.result.detectedAfterPattern, gold.result.detectedAfterPattern);
  EXPECT_EQ(run.remoteErrors, 0u) << chaosFailureReport(run);
}

TEST(ChaosCampaign, ExhaustedRetriesResumeWithSameKeyAndNeverDoubleBill) {
  // An ack-loss path: the server executes, but 60% of responses vanish — and
  // a tight 2-attempt budget forces TransportFailure declarations. The
  // handle re-issues each dead call with the SAME idempotency key, so the
  // channel resumes the key's attempt numbering (a verbatim re-run would
  // deterministically lose the same responses forever) and the provider
  // answers re-executions from its replay cache. Fees must not move.
  const ChaosOutcome gold = runChaosCampaign(net::FaultProfile::none(), 1);
  net::FaultProfile ackLoss;
  ackLoss.name = "ack-loss";
  ackLoss.dropResponseProb = 0.6;
  rmi::RetryPolicy tight;
  tight.maxAttempts = 2;
  const ChaosOutcome run = runChaosCampaign(ackLoss, 17, 6, 0, 0, 1, &tight);
  expectMatchesGold(run, gold, "ack-loss");
  // The tight budget actually tripped, and the replay cache answered the
  // re-issues: every serverside execution past the first was suppressed.
  EXPECT_GT(run.stats.transportFailures, 0u);
  EXPECT_GT(run.stats.duplicatesSuppressed, 0u);
  EXPECT_GT(run.stats.retries, 0u);
}

}  // namespace
}  // namespace vcad::chaos
