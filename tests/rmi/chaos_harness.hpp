// Chaos harness: one end-to-end virtual fault campaign (remote multiplier
// IP behind an RmiChannel), runnable under any FaultProfile × seed, with a
// provider-restart injector for session-recovery runs.
//
// The harness exists to assert the robustness layer's end-to-end invariants:
// whatever the transport does — drop, duplicate, reorder, corrupt, stall,
// or a provider restart — the campaign's coverage results and the fee
// ledgers must come out bit-identical to the ideal-transport run, with the
// turbulence visible only in the channel's retry/timeout counters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "fault/parallel_campaign.hpp"
#include "fault/virtual_sim.hpp"
#include "gate/generators.hpp"
#include "ip/provider_server.hpp"
#include "ip/remote_component.hpp"
#include "net/faulty_transport.hpp"
#include "obs/trace.hpp"

namespace vcad::chaos {

/// Endpoint decorator that simulates a provider process crash/restart after
/// the N-th dispatched request (0 = never): every session and instance is
/// lost mid-campaign, and the client must recover to finish the run.
class RestartingEndpoint : public rmi::ServerEndpoint,
                           public ip::PublicPartSource {
 public:
  RestartingEndpoint(ip::ProviderServer& target, std::uint64_t restartAfter)
      : target_(target), restartAfter_(restartAfter) {}

  rmi::Response dispatch(const rmi::Request& request) override {
    if (restartAfter_ != 0 && ++dispatched_ == restartAfter_) {
      target_.restart();
      ++restarts_;
    }
    return target_.dispatch(request);
  }
  std::string hostName() const override { return target_.hostName(); }
  ip::PublicPart downloadPublicPart(const std::string& component,
                                    std::uint64_t param) const override {
    return target_.downloadPublicPart(component, param);
  }

  std::uint64_t restarts() const { return restarts_; }

 private:
  ip::ProviderServer& target_;
  std::uint64_t restartAfter_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t restarts_ = 0;
};

/// The chaos multiplier's public part, shared by the in-process provider
/// registration and the client-side source a socket rig needs (the provider
/// then lives in another process, unreachable by loopback discovery).
inline ip::PublicPart chaosMultiplierPublicPart(std::uint64_t w) {
  ip::PublicPart pub;
  pub.functional = [w](const Word& in, const rmi::Sandbox&) {
    const int width = static_cast<int>(w);
    const Word a = in.slice(0, width);
    const Word b = in.slice(width, width);
    if (!a.isFullyKnown() || !b.isFullyKnown()) {
      return Word::allX(2 * width);
    }
    return Word::fromUint(2 * width, a.toUint() * b.toUint());
  };
  return pub;
}

struct ChaosPublicPartSource : ip::PublicPartSource {
  ip::PublicPart downloadPublicPart(const std::string&,
                                    std::uint64_t param) const override {
    return chaosMultiplierPublicPart(param);
  }
};

inline void registerChaosMultiplier(ip::ProviderServer& server) {
  ip::IpComponentSpec spec;
  spec.name = "MultFastLowPower";
  spec.minWidth = 2;
  spec.maxWidth = 16;
  spec.functional = ip::ModelLevel::Static;
  spec.power = ip::ModelLevel::Dynamic;
  spec.testability = ip::ModelLevel::Dynamic;
  spec.fees.instantiateCents = 25.0;
  spec.fees.perDetectionTableCents = 0.05;
  spec.fees.perEvalCents = 0.01;
  server.registerComponent(
      std::move(spec),
      [](std::uint64_t w) {
        return std::make_shared<const gate::Netlist>(
            gate::makeArrayMultiplier(static_cast<int>(w)));
      },
      [](std::uint64_t w) { return chaosMultiplierPublicPart(w); });
}

/// Provider + (optionally restarting) endpoint + fault-injecting channel +
/// a circuit holding one remote multiplier IP, ready for a campaign.
struct ChaosRig {
  static constexpr int kW = 3;
  static constexpr std::uint64_t kChannelSeed = 0x5eed;

  ip::ProviderServer server;
  RestartingEndpoint endpoint;
  net::FaultyTransport transport;
  rmi::RmiChannel channel;
  std::unique_ptr<ip::ProviderHandle> provider;
  Circuit circuit;
  ip::RemoteComponent* mult = nullptr;
  std::unique_ptr<ip::RemoteFaultClient> client;
  std::vector<Connector*> pis;
  std::vector<Connector*> pos;

  explicit ChaosRig(const net::FaultProfile& profile, std::uint64_t seed,
                    std::uint64_t restartAfter = 0, bool viaQueue = false)
      : server("chaos-provider.host", nullptr),
        endpoint(server, restartAfter),
        transport(profile, seed),
        channel(endpoint, net::NetworkProfile::wan(), nullptr, kChannelSeed),
        circuit("chaosFault") {
    registerChaosMultiplier(server);
    // Install before any traffic so even OpenSession rides the faulty path.
    channel.setFaultInjector(&transport);
    // viaQueue routes every provider call through the channel's completion
    // queue (submit + wait) instead of the blocking path — same simulated
    // outcome, asserted bit-for-bit by the campaign invariants.
    provider = std::make_unique<ip::ProviderHandle>(
        channel, viaQueue ? ip::ProviderHandle::CallMode::CompletionQueue
                          : ip::ProviderHandle::CallMode::Blocking);
    auto& a = circuit.makeWord(kW, "a");
    auto& b = circuit.makeWord(kW, "b");
    auto& o = circuit.makeWord(2 * kW, "o");
    ip::RemoteConfig cfg;
    cfg.collectPower = false;
    mult = &circuit.make<ip::RemoteComponent>(
        "MULT", *provider, "MultFastLowPower", kW,
        std::vector<std::pair<std::string, Connector*>>{{"a", &a}, {"b", &b}},
        std::vector<std::pair<std::string, Connector*>>{{"o", &o}}, cfg);
    client = std::make_unique<ip::RemoteFaultClient>(*mult);
    pis = {&a, &b};
    pos = {&o};
  }

  std::vector<fault::FaultClient*> components() { return {client.get()}; }
};

inline std::vector<std::vector<Word>> chaosPatterns(int count) {
  Rng rng(0xC0FFEE);  // pattern set is fixed: only the transport varies
  std::vector<std::vector<Word>> out;
  for (int i = 0; i < count; ++i) {
    out.push_back({Word::fromUint(ChaosRig::kW, rng.next()),
                   Word::fromUint(ChaosRig::kW, rng.next())});
  }
  return out;
}

/// Everything a chaos run produces that the invariants quantify over.
struct ChaosOutcome {
  fault::CampaignResult result;
  rmi::ChannelStats stats;          // client-side ledger + retry counters
  net::TransportStats transport;    // faults actually injected
  double providerFeesCents = 0.0;   // server-side ledger (final session)
  std::uint64_t recoveries = 0;     // completed session recoveries
  std::uint64_t restarts = 0;       // provider crashes injected
  std::uint64_t remoteErrors = 0;   // remote-call failures the module saw
  std::string profileName;          // which FaultProfile drove the run
  std::uint64_t seed = 0;           // its transport seed (reproduces the run)
};

/// Renders a failing run's identity plus the tail of the trace buffer —
/// enough to replay the exact chaos schedule and see what the channel was
/// doing when the invariant broke.
inline std::string chaosFailureReport(const ChaosOutcome& run) {
  std::string s = "chaos run: profile=" +
                  (run.profileName.empty() ? "none" : run.profileName) +
                  " seed=" + std::to_string(run.seed) + "\n";
  const std::vector<obs::TraceEvent> tail = obs::Tracer::global().lastEvents(64);
  if (tail.empty()) {
    s += "(no trace events buffered — run with tracing enabled to capture "
         "the failing schedule)";
    return s;
  }
  s += "last " + std::to_string(tail.size()) + " trace events:\n";
  s += obs::renderEvents(tail);
  return s;
}

/// Runs the campaign under the given transport behaviour. threads == 0 uses
/// the VirtualFaultSimulator — serially when pooledWorkers == 0, with a
/// pooled concurrent phase-2 injection engine of that many pinned
/// schedulers otherwise; threads > 0 uses the parallel (batched) engine
/// with the given worker count and table batch size. `traced` runs the
/// campaign with the global tracer on (cleared first, prior state restored
/// after), so a failing invariant can dump the run's final trace events;
/// tracing never feeds back into the simulation, so outcomes are identical
/// either way (tests/obs/overhead_test.cpp holds that line).
inline ChaosOutcome runChaosCampaign(const net::FaultProfile& profile,
                                     std::uint64_t seed, int patternCount = 6,
                                     std::uint64_t restartAfter = 0,
                                     std::size_t threads = 0,
                                     std::size_t batch = 1,
                                     const rmi::RetryPolicy* policy = nullptr,
                                     std::size_t pooledWorkers = 0,
                                     bool traced = true,
                                     bool viaQueue = false) {
  obs::Tracer& tracer = obs::Tracer::global();
  const bool wasEnabled = tracer.enabled();
  if (traced) {
    tracer.clear();
    tracer.setEnabled(true);
  }
  ChaosRig rig(profile, seed, restartAfter, viaQueue);
  if (policy != nullptr) rig.channel.setRetryPolicy(*policy);
  const auto patterns = chaosPatterns(patternCount);
  ChaosOutcome out;
  out.profileName = profile.name;
  out.seed = seed;
  if (threads == 0) {
    fault::VirtualFaultSimulator sim(rig.circuit, rig.components(), rig.pis,
                                     rig.pos);
    sim.setInjectionWorkers(pooledWorkers);
    out.result = sim.run(patterns);
  } else {
    fault::ParallelCampaignConfig cfg;
    cfg.threads = threads;
    cfg.batchSize = batch;
    fault::ParallelFaultSimulator sim(rig.circuit, rig.components(), rig.pis,
                                      rig.pos, cfg);
    out.result = sim.run(patterns);
  }
  out.stats = rig.channel.stats();
  out.transport = rig.transport.stats();
  out.providerFeesCents = rig.server.sessionFeesCents(rig.provider->session());
  out.recoveries = rig.provider->recoveries();
  out.restarts = rig.endpoint.restarts();
  out.remoteErrors = rig.mult->remoteErrors();
  if (traced) tracer.setEnabled(wasEnabled);
  return out;
}

}  // namespace vcad::chaos
