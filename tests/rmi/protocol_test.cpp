#include "rmi/protocol.hpp"

#include <gtest/gtest.h>

namespace vcad::rmi {
namespace {

TEST(Args, TypedRoundTrip) {
  Args a;
  a.addU64(42).addDouble(2.5).addWord(Word::fromUint(8, 0x5A)).addString("hi");
  a.addWordVector({Word::fromUint(4, 1), Word::fromUint(4, 2)});
  EXPECT_EQ(a.takeU64(), 42u);
  EXPECT_DOUBLE_EQ(a.takeDouble(), 2.5);
  EXPECT_EQ(a.takeWord().toUint(), 0x5Au);
  EXPECT_EQ(a.takeString(), "hi");
  EXPECT_EQ(a.takeWordVector().size(), 2u);
}

TEST(Args, TagMismatchThrows) {
  Args a;
  a.addU64(1);
  EXPECT_THROW(a.takeWord(), std::runtime_error);
}

TEST(Request, MarshalRoundTrip) {
  Request r;
  r.session = 7;
  r.instance = 12;
  r.method = MethodId::EstimatePower;
  r.component = "MultFastLowPower";
  r.args.addWordVector({Word::fromUint(32, 123456)});

  net::ByteBuffer wire = r.marshal();
  const Request back = Request::unmarshal(wire);
  EXPECT_EQ(back.session, 7u);
  EXPECT_EQ(back.instance, 12u);
  EXPECT_EQ(back.method, MethodId::EstimatePower);
  EXPECT_EQ(back.component, "MultFastLowPower");
  Args args = back.args;
  EXPECT_EQ(args.takeWordVector()[0].toUint(), 123456u);
}

TEST(Response, MarshalRoundTrip) {
  Response r;
  r.status = Status::PaymentRequired;
  r.error = "fee required";
  r.feeCents = 12.5;
  r.payload.writeDouble(9.75);

  net::ByteBuffer wire = r.marshal();
  Response back = Response::unmarshal(wire);
  EXPECT_EQ(back.status, Status::PaymentRequired);
  EXPECT_EQ(back.error, "fee required");
  EXPECT_DOUBLE_EQ(back.feeCents, 12.5);
  EXPECT_DOUBLE_EQ(back.payload.readDouble(), 9.75);
  EXPECT_FALSE(back.ok());
}

TEST(Response, FailureHelper) {
  const Response r = Response::failure(Status::NotFound, "nope");
  EXPECT_EQ(r.status, Status::NotFound);
  EXPECT_EQ(r.error, "nope");
  EXPECT_FALSE(r.ok());
}

TEST(Protocol, MethodNames) {
  EXPECT_EQ(toString(MethodId::GetDetectionTable), "GetDetectionTable");
  EXPECT_EQ(toString(Status::SecurityViolation), "SecurityViolation");
}

}  // namespace
}  // namespace vcad::rmi
