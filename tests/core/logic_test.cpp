#include "core/logic.hpp"

#include <gtest/gtest.h>

#include <array>

namespace vcad {
namespace {

constexpr std::array<Logic, 4> kAll = {Logic::L0, Logic::L1, Logic::X,
                                       Logic::Z};

TEST(Logic, NotTruthTable) {
  EXPECT_EQ(logicNot(Logic::L0), Logic::L1);
  EXPECT_EQ(logicNot(Logic::L1), Logic::L0);
  EXPECT_EQ(logicNot(Logic::X), Logic::X);
  EXPECT_EQ(logicNot(Logic::Z), Logic::X);
}

TEST(Logic, AndControllingZeroDominatesUnknown) {
  EXPECT_EQ(logicAnd(Logic::L0, Logic::X), Logic::L0);
  EXPECT_EQ(logicAnd(Logic::X, Logic::L0), Logic::L0);
  EXPECT_EQ(logicAnd(Logic::L0, Logic::Z), Logic::L0);
  EXPECT_EQ(logicAnd(Logic::L1, Logic::X), Logic::X);
}

TEST(Logic, OrControllingOneDominatesUnknown) {
  EXPECT_EQ(logicOr(Logic::L1, Logic::X), Logic::L1);
  EXPECT_EQ(logicOr(Logic::Z, Logic::L1), Logic::L1);
  EXPECT_EQ(logicOr(Logic::L0, Logic::X), Logic::X);
}

TEST(Logic, XorUnknownPoisons) {
  EXPECT_EQ(logicXor(Logic::L1, Logic::X), Logic::X);
  EXPECT_EQ(logicXor(Logic::Z, Logic::L0), Logic::X);
  EXPECT_EQ(logicXor(Logic::L1, Logic::L0), Logic::L1);
  EXPECT_EQ(logicXor(Logic::L1, Logic::L1), Logic::L0);
}

TEST(Logic, KnownValuesMatchBoolAlgebra) {
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      EXPECT_EQ(logicAnd(fromBool(a), fromBool(b)), fromBool(a && b));
      EXPECT_EQ(logicOr(fromBool(a), fromBool(b)), fromBool(a || b));
      EXPECT_EQ(logicXor(fromBool(a), fromBool(b)), fromBool(a != b));
      EXPECT_EQ(logicNand(fromBool(a), fromBool(b)), fromBool(!(a && b)));
      EXPECT_EQ(logicNor(fromBool(a), fromBool(b)), fromBool(!(a || b)));
      EXPECT_EQ(logicXnor(fromBool(a), fromBool(b)), fromBool(a == b));
    }
  }
}

TEST(Logic, CommutativityProperty) {
  for (Logic a : kAll) {
    for (Logic b : kAll) {
      EXPECT_EQ(logicAnd(a, b), logicAnd(b, a));
      EXPECT_EQ(logicOr(a, b), logicOr(b, a));
      EXPECT_EQ(logicXor(a, b), logicXor(b, a));
    }
  }
}

TEST(Logic, DeMorganProperty) {
  for (Logic a : kAll) {
    for (Logic b : kAll) {
      EXPECT_EQ(logicNand(a, b), logicOr(logicNot(a), logicNot(b)));
      EXPECT_EQ(logicNor(a, b), logicAnd(logicNot(a), logicNot(b)));
    }
  }
}

TEST(Logic, DoubleNegationOnKnown) {
  EXPECT_EQ(logicNot(logicNot(Logic::L0)), Logic::L0);
  EXPECT_EQ(logicNot(logicNot(Logic::L1)), Logic::L1);
}

TEST(Logic, BufNormalizesZ) {
  EXPECT_EQ(logicBuf(Logic::Z), Logic::X);
  EXPECT_EQ(logicBuf(Logic::L1), Logic::L1);
}

TEST(Logic, CharRoundTrip) {
  for (Logic v : kAll) {
    EXPECT_EQ(logicFromChar(toChar(v)), v == Logic::Z ? Logic::Z : v);
  }
  EXPECT_THROW(logicFromChar('q'), std::invalid_argument);
}

TEST(Logic, IsKnown) {
  EXPECT_TRUE(isKnown(Logic::L0));
  EXPECT_TRUE(isKnown(Logic::L1));
  EXPECT_FALSE(isKnown(Logic::X));
  EXPECT_FALSE(isKnown(Logic::Z));
}

}  // namespace
}  // namespace vcad
