#include "core/sim_controller.hpp"

#include <gtest/gtest.h>

#include "core/wiring.hpp"

namespace vcad {
namespace {

class FixedEstimator : public Estimator {
 public:
  FixedEstimator(std::string name, double value)
      : Estimator(EstimatorInfo{std::move(name), 10, 0, 0, false, false}),
        value_(value) {}
  std::unique_ptr<ParamValue> estimate(const EstimationContext&) override {
    return std::make_unique<ScalarValue>(value_, "u");
  }

 private:
  double value_;
};

class Doubler : public Module {
 public:
  Doubler(std::string name, Connector& in, Connector& out)
      : Module(std::move(name)) {
    in_ = &addInput("in", in);
    out_ = &addOutput("out", out);
  }
  void processInputEvent(const SignalToken& t, SimContext& ctx) override {
    emit(ctx, *out_, Word::fromUint(t.value().width(),
                                    (t.value().toUint() * 2) &
                                        ((1ULL << t.value().width()) - 1)));
  }
  Port* in_;
  Port* out_;
};

TEST(SimController, RunOneInstantProcessesExactlyOneTimestep) {
  Circuit top("top");
  auto& a = top.makeWord(8);
  auto& b = top.makeWord(8);
  top.make<Doubler>("d", a, b);
  SimulationController sim(top);
  sim.inject(a, Word::fromUint(8, 3), 5);
  sim.inject(a, Word::fromUint(8, 4), 9);

  EXPECT_TRUE(sim.runOneInstant());
  EXPECT_EQ(sim.scheduler().now(), 5u);
  EXPECT_EQ(b.value(sim.scheduler().id()).toUint(), 6u);

  EXPECT_TRUE(sim.runOneInstant());
  EXPECT_EQ(sim.scheduler().now(), 9u);
  EXPECT_EQ(b.value(sim.scheduler().id()).toUint(), 8u);

  EXPECT_FALSE(sim.runOneInstant());  // queue empty
}

TEST(SimController, StartWithUntilBoundStopsEarly) {
  Circuit top("top");
  auto& a = top.makeWord(8);
  auto& b = top.makeWord(8);
  top.make<Doubler>("d", a, b);
  SimulationController sim(top);
  sim.inject(a, Word::fromUint(8, 1), 2);
  sim.inject(a, Word::fromUint(8, 2), 50);
  sim.start(10);
  EXPECT_EQ(b.value(sim.scheduler().id()).toUint(), 2u);
  sim.start();
  EXPECT_EQ(b.value(sim.scheduler().id()).toUint(), 4u);
}

TEST(SimController, EstimateAllCollectsFromEveryLeaf) {
  Circuit top("top");
  auto& a = top.makeWord(4);
  auto& b = top.makeWord(4);
  auto& c = top.makeWord(4);
  auto& m1 = top.make<Buffer>("m1", a, b);
  auto& m2 = top.make<Buffer>("m2", b, c);
  m1.addEstimator(ParamKind::Area, std::make_shared<FixedEstimator>("a1", 10));
  m2.addEstimator(ParamKind::Area, std::make_shared<FixedEstimator>("a2", 32));

  SetupController setup;
  setup.set(ParamKind::Area, EstimatorChoice{Criterion::BestAccuracy});
  SimulationController sim(top, &setup);
  CollectingSink sink;
  sim.estimateAll(ParamKind::Area, sink);
  EXPECT_EQ(sink.items().size(), 2u);
  EXPECT_DOUBLE_EQ(sink.sum(ParamKind::Area), 42.0);
  EXPECT_EQ(sink.nullCount(), 0u);
  ASSERT_NE(sink.find(m1, ParamKind::Area), nullptr);
  EXPECT_DOUBLE_EQ(sink.find(m1, ParamKind::Area)->asDouble(), 10.0);
  EXPECT_EQ(sink.find(m1, ParamKind::Delay), nullptr);
}

TEST(SimController, EstimateAllWithoutSetupYieldsNulls) {
  Circuit top("top");
  auto& a = top.makeWord(4);
  auto& b = top.makeWord(4);
  top.make<Buffer>("m", a, b);
  SimulationController sim(top);
  CollectingSink sink;
  sim.estimateAll(ParamKind::AvgPower, sink);
  EXPECT_EQ(sink.items().size(), 1u);
  EXPECT_EQ(sink.nullCount(), 1u);
  EXPECT_DOUBLE_EQ(sink.sum(ParamKind::AvgPower), 0.0);
}

TEST(SimController, ForceOutputsAndClear) {
  Circuit top("top");
  auto& a = top.makeWord(8);
  auto& b = top.makeWord(8);
  auto& d = top.make<Doubler>("d", a, b);
  SimulationController sim(top);
  sim.forceOutputs(d, {{d.out_, Word::fromUint(8, 0xEE)}});
  sim.inject(a, Word::fromUint(8, 1));
  sim.start();
  EXPECT_EQ(b.value(sim.scheduler().id()).toUint(), 0xEEu);
  sim.clearForcedOutputs();
  sim.inject(a, Word::fromUint(8, 2));
  sim.start();
  EXPECT_EQ(b.value(sim.scheduler().id()).toUint(), 4u);
}

TEST(SimController, InjectIntoUnreadConnectorLatches) {
  Circuit top("top");
  auto& floating = top.makeWord(8, "floating");
  SimulationController sim(top);
  sim.inject(floating, Word::fromUint(8, 0x77));
  sim.start();
  EXPECT_EQ(floating.value(sim.scheduler().id()).toUint(), 0x77u);
}

}  // namespace
}  // namespace vcad
