#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/sim_controller.hpp"
#include "core/wiring.hpp"

namespace vcad {
namespace {

TEST(Trace, DeliveredTokensAreLogged) {
  Circuit top("top");
  auto& in = top.makeWord(8, "in");
  auto& out = top.makeWord(8, "out");
  top.make<Buffer>("buf", in, out);
  SimulationController sim(top);
  LogSink trace;
  sim.scheduler().setTraceSink(&trace);
  sim.inject(in, Word::fromUint(8, 0x42), 3);
  sim.start();

  const auto entries = trace.entries();
  ASSERT_EQ(entries.size(), 2u);  // inject -> buf.in, then buf -> latch
  EXPECT_NE(entries[0].message.find("@3 signal 01000010 -> buf.in"),
            std::string::npos)
      << entries[0].message;
  EXPECT_NE(entries[1].message.find("latch"), std::string::npos);
}

TEST(Trace, SelfAndEstimationTokensDescribed) {
  class Ticker : public Module {
   public:
    using Module::Module;
    void initialize(SimContext& ctx) override { selfSchedule(ctx, 5, 7); }
  };
  Circuit top("top");
  top.make<Ticker>("tick");
  SimulationController sim(top);
  LogSink trace;
  sim.scheduler().setTraceSink(&trace);
  sim.start();
  const auto entries = trace.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(entries[0].message.find("@5 self(7) -> tick"), std::string::npos)
      << entries[0].message;
}

TEST(Trace, DisabledByDefault) {
  Circuit top("top");
  auto& in = top.makeWord(4);
  auto& out = top.makeWord(4);
  top.make<Buffer>("b", in, out);
  SimulationController sim(top);
  sim.inject(in, Word::fromUint(4, 1));
  EXPECT_NO_THROW(sim.start());  // no sink, no crash, no logging
}

}  // namespace
}  // namespace vcad
