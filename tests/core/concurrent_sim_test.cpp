// The paper's concurrency claim, tested head-on: multiple simulations of
// the SAME design, with DIFFERENT estimation setups, running on concurrent
// threads — functional results must be identical to sequential runs, and
// each simulation must retrieve the estimators its own setup bound, with no
// reset or save/restore between runs.
#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/sim_controller.hpp"
#include "gate/generators.hpp"
#include "gate/netlist_module.hpp"
#include "rtl/modules.hpp"

namespace vcad {
namespace {

class FixedEstimator : public Estimator {
 public:
  FixedEstimator(std::string name, double value, double err)
      : Estimator(EstimatorInfo{std::move(name), err, 0, 0, false, false}),
        value_(value) {}
  std::unique_ptr<ParamValue> estimate(const EstimationContext&) override {
    return std::make_unique<ScalarValue>(value_, "u");
  }

 private:
  double value_;
};

struct Rig {
  Circuit top{"top"};
  gate::NetlistModule* mult = nullptr;
  rtl::PrimaryOutput* out = nullptr;

  Rig() {
    const int w = 6;
    auto nl = std::make_shared<gate::Netlist>(gate::makeArrayMultiplier(w));
    auto& a = top.makeWord(w, "a");
    auto& b = top.makeWord(w, "b");
    auto& o = top.makeWord(2 * w, "o");
    top.make<rtl::RandomPrimaryInput>("ina", w, a, 40, 10, 0xAA);
    top.make<rtl::RandomPrimaryInput>("inb", w, b, 40, 10, 0xBB);
    mult = &top.make<gate::NetlistModule>(
        "mult", nl,
        std::vector<gate::NetlistModule::PortGroup>{{"a", &a, 0, w},
                                                    {"b", &b, w, w}},
        std::vector<gate::NetlistModule::PortGroup>{{"o", &o, 0, 2 * w}});
    mult->addEstimator(ParamKind::AvgPower,
                       std::make_shared<FixedEstimator>("rough", 100.0, 30));
    mult->addEstimator(ParamKind::AvgPower,
                       std::make_shared<FixedEstimator>("fine", 42.0, 5));
    out = &top.make<rtl::PrimaryOutput>("out", o);
  }
};

TEST(ConcurrentSim, DifferentSetupsOnConcurrentThreads) {
  Rig rig;
  SetupController wantFine, wantRough;
  wantFine.set(ParamKind::AvgPower, EstimatorChoice{Criterion::BestAccuracy});
  EstimatorChoice byName{Criterion::ByName};
  byName.name = "rough";
  wantRough.set(ParamKind::AvgPower, byName);

  SimulationController fine(rig.top, &wantFine);
  SimulationController roughSim(rig.top, &wantRough);
  // A reference sequential run with no setup at all.
  SimulationController plain(rig.top);

  runConcurrently({&fine, &roughSim});
  plain.start();

  // 1. Functional results identical across all three schedulers.
  SimContext cf{fine.scheduler(), &wantFine};
  SimContext cr{roughSim.scheduler(), &wantRough};
  SimContext cp{plain.scheduler(), nullptr};
  ASSERT_EQ(rig.out->sampleCount(cf), 40u);
  ASSERT_EQ(rig.out->sampleCount(cr), 40u);
  const auto& hf = rig.out->history(cf);
  const auto& hr = rig.out->history(cr);
  const auto& hp = rig.out->history(cp);
  for (size_t i = 0; i < hf.size(); ++i) {
    EXPECT_EQ(hf[i].value, hr[i].value);
    EXPECT_EQ(hf[i].value, hp[i].value);
  }

  // 2. Each simulation retrieves its own setup's estimator at runtime.
  CollectingSink sinkFine, sinkRough;
  fine.estimateAll(ParamKind::AvgPower, sinkFine);
  roughSim.estimateAll(ParamKind::AvgPower, sinkRough);
  const ParamValue* vf = sinkFine.find(*rig.mult, ParamKind::AvgPower);
  const ParamValue* vr = sinkRough.find(*rig.mult, ParamKind::AvgPower);
  ASSERT_NE(vf, nullptr);
  ASSERT_NE(vr, nullptr);
  EXPECT_DOUBLE_EQ(vf->asDouble(), 42.0);   // "fine"
  EXPECT_DOUBLE_EQ(vr->asDouble(), 100.0);  // "rough"

  // 3. Activity accounting is per scheduler and equal across equal runs.
  EXPECT_EQ(rig.mult->evaluations(cf), rig.mult->evaluations(cr));
  EXPECT_EQ(rig.mult->netToggles(cf), rig.mult->netToggles(cp));
}

TEST(ConcurrentSim, ManyConcurrentRunsProduceIdenticalStreams) {
  Rig rig;
  constexpr int kRuns = 6;
  std::vector<std::unique_ptr<SimulationController>> sims;
  std::vector<SimulationController*> ptrs;
  for (int i = 0; i < kRuns; ++i) {
    sims.push_back(std::make_unique<SimulationController>(rig.top));
    ptrs.push_back(sims.back().get());
  }
  runConcurrently(ptrs);
  SimContext ref{sims[0]->scheduler(), nullptr};
  const auto& golden = rig.out->history(ref);
  ASSERT_EQ(golden.size(), 40u);
  for (int i = 1; i < kRuns; ++i) {
    SimContext ctx{sims[static_cast<size_t>(i)]->scheduler(), nullptr};
    const auto& h = rig.out->history(ctx);
    ASSERT_EQ(h.size(), golden.size()) << i;
    for (size_t k = 0; k < h.size(); ++k) {
      EXPECT_EQ(h[k].value, golden[k].value) << "run " << i << " sample " << k;
    }
  }
}

TEST(ConcurrentSim, RepeatedRunsNeedNoReset) {
  // "No reset or save/restore action among different scheduler runs is
  // necessary": back-to-back controllers over the same design just work.
  Rig rig;
  Word first;
  for (int round = 0; round < 4; ++round) {
    SimulationController sim(rig.top);
    sim.start();
    SimContext ctx{sim.scheduler(), nullptr};
    ASSERT_EQ(rig.out->sampleCount(ctx), 40u);
    if (round == 0) {
      first = rig.out->last(ctx);
    } else {
      EXPECT_EQ(rig.out->last(ctx), first);
    }
    rig.top.clearSchedulerState(sim.scheduler().id());
  }
}

}  // namespace
}  // namespace vcad
