#include "core/module.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "core/connector.hpp"
#include "core/scheduler.hpp"
#include "core/setup.hpp"

namespace vcad {
namespace {

class Dummy : public Module {
 public:
  using Module::Module;

  struct Counter : ModuleState {
    int value = 0;
  };

  int bump(SimContext& ctx) { return ++state<Counter>(ctx).value; }
};

TEST(Module, DuplicatePortNameRejected) {
  Dummy m("m");
  m.addPort("p", PortDir::In, 4);
  EXPECT_THROW(m.addPort("p", PortDir::Out, 4), std::logic_error);
}

TEST(Module, FindPortAndDirectionFilters) {
  Dummy m("m");
  WordConnector a(4), b(4), c(4);
  m.addInput("a", a);
  m.addInput("b", b);
  m.addOutput("o", c);
  EXPECT_EQ(m.ports().size(), 3u);
  EXPECT_NE(m.findPort("a"), nullptr);
  EXPECT_EQ(m.findPort("zz"), nullptr);
  EXPECT_EQ(m.inputPorts().size(), 2u);
  EXPECT_EQ(m.outputPorts().size(), 1u);
}

TEST(Module, PerSchedulerStateIsIndependent) {
  Dummy m("m");
  Scheduler s1, s2;
  SimContext c1{s1, nullptr}, c2{s2, nullptr};
  EXPECT_EQ(m.bump(c1), 1);
  EXPECT_EQ(m.bump(c1), 2);
  EXPECT_EQ(m.bump(c2), 1);  // fresh state for the other scheduler
  EXPECT_EQ(m.bump(c1), 3);
}

TEST(Module, ConcurrentStateAccessIsSafe) {
  Dummy m("m");
  constexpr int kIters = 2000;
  auto worker = [&m, kIters]() {
    Scheduler s;
    SimContext ctx{s, nullptr};
    for (int i = 0; i < kIters; ++i) m.bump(ctx);
    EXPECT_EQ(m.state<Dummy::Counter>(ctx).value, kIters);
  };
  std::thread t1(worker), t2(worker), t3(worker);
  t1.join();
  t2.join();
  t3.join();
}

TEST(Module, EmitOnOpenPortIsObservable) {
  Dummy m("m");
  Port& p = m.addPort("o", PortDir::Out, 8);
  Scheduler s;
  SimContext ctx{s, nullptr};
  EXPECT_FALSE(m.lastDriven(ctx, p).isFullyKnown());
  m.emit(ctx, p, Word::fromUint(8, 99));
  EXPECT_EQ(m.lastDriven(ctx, p).toUint(), 99u);
}

TEST(Module, EmitOnInputPortRejected) {
  Dummy m("m");
  Port& p = m.addPort("i", PortDir::In, 8);
  Scheduler s;
  SimContext ctx{s, nullptr};
  EXPECT_THROW(m.emit(ctx, p, Word::fromUint(8, 0)), std::logic_error);
}

TEST(Module, ReadInputOnUnconnectedPortIsAllX) {
  Dummy m("m");
  Port& p = m.addPort("i", PortDir::In, 8);
  Scheduler s;
  SimContext ctx{s, nullptr};
  EXPECT_FALSE(m.readInput(ctx, p).isFullyKnown());
}

TEST(Module, EmitIntoOpenEndedConnectorLatchesValue) {
  Dummy m("m");
  WordConnector c(8, "tap");
  Port& p = m.addOutput("o", c);
  (void)p;
  Scheduler s;
  SimContext ctx{s, nullptr};
  m.emit(ctx, *m.findPort("o"), Word::fromUint(8, 0x5A));
  s.run();  // the latch happens at the scheduled time, not at emit time
  EXPECT_EQ(c.value(s.id()).toUint(), 0x5Au);
}

// --- estimator plumbing ---------------------------------------------------

class FixedEstimator : public Estimator {
 public:
  FixedEstimator(std::string name, double value, double err = 10, double cost = 0,
                 double cpu = 0, bool remote = false)
      : Estimator(EstimatorInfo{std::move(name), err, cost, cpu, remote, false}),
        value_(value) {}
  std::unique_ptr<ParamValue> estimate(const EstimationContext&) override {
    return std::make_unique<ScalarValue>(value_, "u");
  }

 private:
  double value_;
};

TEST(Module, CandidateEstimatorsAccumulate) {
  Dummy m("m");
  m.addEstimator(ParamKind::AvgPower,
                 std::make_shared<FixedEstimator>("e1", 1.0));
  m.addEstimator(ParamKind::AvgPower,
                 std::make_shared<FixedEstimator>("e2", 2.0));
  m.addEstimator(ParamKind::Area, std::make_shared<FixedEstimator>("a", 3.0));
  EXPECT_EQ(m.candidateEstimators(ParamKind::AvgPower).size(), 2u);
  EXPECT_EQ(m.candidateEstimators(ParamKind::Area).size(), 1u);
  EXPECT_TRUE(m.candidateEstimators(ParamKind::Delay).empty());
}

TEST(Module, NullEstimatorRejectsNullArgument) {
  Dummy m("m");
  EXPECT_THROW(m.addEstimator(ParamKind::Area, nullptr),
               std::invalid_argument);
}

TEST(Module, UnboundEstimatorDefaultsToNull) {
  Dummy m("m");
  auto est = m.boundEstimator(123, ParamKind::Delay);
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->name(), "null");
}

TEST(Module, BindingsAreKeyedBySetup) {
  Dummy m("m");
  auto e1 = std::make_shared<FixedEstimator>("e1", 1.0);
  auto e2 = std::make_shared<FixedEstimator>("e2", 2.0);
  m.bindEstimator(1, ParamKind::AvgPower, e1);
  m.bindEstimator(2, ParamKind::AvgPower, e2);
  EXPECT_EQ(m.boundEstimator(1, ParamKind::AvgPower)->name(), "e1");
  EXPECT_EQ(m.boundEstimator(2, ParamKind::AvgPower)->name(), "e2");
}

class RecordingSink : public EstimationSink {
 public:
  void collect(Module& module, ParamKind kind,
               std::unique_ptr<ParamValue> value) override {
    lastModule = &module;
    lastKind = kind;
    lastValue = std::move(value);
  }
  Module* lastModule = nullptr;
  ParamKind lastKind = ParamKind::Area;
  std::unique_ptr<ParamValue> lastValue;
};

TEST(Module, EstimationTokenUsesSetupBinding) {
  Dummy m("m");
  m.addEstimator(ParamKind::AvgPower,
                 std::make_shared<FixedEstimator>("fix", 42.0));
  SetupController setup;
  setup.set(ParamKind::AvgPower, {});
  setup.apply(m);

  Scheduler s;
  s.setSetup(&setup);
  RecordingSink sink;
  s.schedule(std::make_unique<EstimationToken>(m, ParamKind::AvgPower, sink));
  s.run();
  ASSERT_NE(sink.lastValue, nullptr);
  EXPECT_DOUBLE_EQ(sink.lastValue->asDouble(), 42.0);
}

TEST(Module, EstimationWithoutSetupYieldsNull) {
  Dummy m("m");
  m.addEstimator(ParamKind::AvgPower,
                 std::make_shared<FixedEstimator>("fix", 42.0));
  Scheduler s;  // no setup installed
  RecordingSink sink;
  s.schedule(std::make_unique<EstimationToken>(m, ParamKind::AvgPower, sink));
  s.run();
  ASSERT_NE(sink.lastValue, nullptr);
  EXPECT_TRUE(sink.lastValue->isNull());
}

}  // namespace
}  // namespace vcad
