#include "core/connector.hpp"

#include <gtest/gtest.h>

#include "core/module.hpp"

namespace vcad {
namespace {

// Minimal concrete module for wiring tests.
class Dummy : public Module {
 public:
  using Module::Module;
};

TEST(Connector, AttachSetsPeerRelation) {
  Dummy a("a");
  Dummy b("b");
  WordConnector c(8, "c");
  Port& pa = a.addOutput("out", c);
  Port& pb = b.addInput("in", c);
  EXPECT_EQ(c.peerOf(pa), &pb);
  EXPECT_EQ(c.peerOf(pb), &pa);
  EXPECT_EQ(pa.connector(), &c);
  EXPECT_TRUE(pb.isConnected());
}

TEST(Connector, WidthMismatchRejected) {
  Dummy a("a");
  WordConnector c(8);
  Port& p = a.addPort("p", PortDir::Out, 4);
  EXPECT_THROW(c.attach(p), std::invalid_argument);
}

TEST(Connector, PointToPointOnly) {
  Dummy a("a"), b("b"), d("d");
  WordConnector c(8);
  a.addOutput("out", c);
  b.addInput("in", c);
  Port& extra = d.addPort("in", PortDir::In, 8);
  EXPECT_THROW(c.attach(extra), std::logic_error);
}

TEST(Connector, TwoDriversRejected) {
  Dummy a("a"), b("b");
  WordConnector c(8);
  a.addOutput("out", c);
  EXPECT_THROW(b.addOutput("out", c), std::logic_error);
}

TEST(Connector, TwoReceiversRejected) {
  Dummy a("a"), b("b");
  WordConnector c(8);
  a.addInput("in", c);
  EXPECT_THROW(b.addInput("in", c), std::logic_error);
}

TEST(Connector, InOutPairsWithAnything) {
  Dummy a("a"), b("b");
  WordConnector c(8);
  EXPECT_NO_THROW(a.addInOut("io", c));
  EXPECT_NO_THROW(b.addInOut("io", c));
}

TEST(Connector, PortCannotAttachTwice) {
  Dummy a("a");
  WordConnector c1(8), c2(8);
  Port& p = a.addOutput("out", c1);
  EXPECT_THROW(c2.attach(p), std::logic_error);
}

TEST(Connector, ValueIsPerScheduler) {
  WordConnector c(4);
  c.setValue(1, Word::fromUint(4, 0xA));
  c.setValue(2, Word::fromUint(4, 0x5));
  EXPECT_EQ(c.value(1).toUint(), 0xAu);
  EXPECT_EQ(c.value(2).toUint(), 0x5u);
  // A scheduler that never wrote sees all-X.
  EXPECT_FALSE(c.value(3).isFullyKnown());
}

TEST(Connector, ClearValueIsolatesOneScheduler) {
  WordConnector c(4);
  c.setValue(1, Word::fromUint(4, 1));
  c.setValue(2, Word::fromUint(4, 2));
  c.clearValue(1);
  EXPECT_FALSE(c.value(1).isFullyKnown());
  EXPECT_EQ(c.value(2).toUint(), 2u);
}

TEST(Connector, SetValueWidthChecked) {
  WordConnector c(4);
  EXPECT_THROW(c.setValue(1, Word::fromUint(8, 0)), std::invalid_argument);
}

TEST(Connector, BadWidthRejected) {
  EXPECT_THROW(WordConnector(0), std::invalid_argument);
  EXPECT_THROW(WordConnector(65), std::invalid_argument);
}

TEST(Connector, BitConnectorIsWidthOne) {
  BitConnector c;
  EXPECT_EQ(c.width(), 1);
}

}  // namespace
}  // namespace vcad
