#include "core/word.hpp"

#include <gtest/gtest.h>

namespace vcad {
namespace {

TEST(Word, DefaultIsEmpty) {
  Word w;
  EXPECT_EQ(w.width(), 0);
  EXPECT_TRUE(w.empty());
}

TEST(Word, FreshWordIsAllX) {
  Word w(8);
  EXPECT_FALSE(w.isFullyKnown());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(w.bit(i), Logic::X);
}

TEST(Word, FromUintMasksToWidth) {
  Word w = Word::fromUint(4, 0xFF);
  EXPECT_EQ(w.toUint(), 0xFu);
  EXPECT_TRUE(w.isFullyKnown());
}

TEST(Word, FromUintFullWidth64) {
  Word w = Word::fromUint(64, ~0ULL);
  EXPECT_EQ(w.toUint(), ~0ULL);
}

TEST(Word, SetBitAndReadBack) {
  Word w(4);
  w.setBit(0, Logic::L1);
  w.setBit(1, Logic::L0);
  w.setBit(2, Logic::Z);
  w.setBit(3, Logic::X);
  EXPECT_EQ(w.bit(0), Logic::L1);
  EXPECT_EQ(w.bit(1), Logic::L0);
  EXPECT_EQ(w.bit(2), Logic::Z);
  EXPECT_EQ(w.bit(3), Logic::X);
  EXPECT_FALSE(w.isFullyKnown());
}

TEST(Word, ToUintThrowsOnUnknown) {
  Word w(2);
  w.setBit(0, Logic::L1);
  EXPECT_THROW(w.toUint(), std::logic_error);
}

TEST(Word, StringRoundTrip) {
  const Word w = Word::fromString("1X0Z");
  EXPECT_EQ(w.width(), 4);
  EXPECT_EQ(w.bit(3), Logic::L1);  // MSB first in the string
  EXPECT_EQ(w.bit(2), Logic::X);
  EXPECT_EQ(w.bit(1), Logic::L0);
  EXPECT_EQ(w.bit(0), Logic::Z);
  EXPECT_EQ(w.toString(), "1X0Z");
}

TEST(Word, EqualityDistinguishesXAndZ) {
  Word a(1);
  Word b(1);
  a.setBit(0, Logic::X);
  b.setBit(0, Logic::Z);
  EXPECT_NE(a, b);
  b.setBit(0, Logic::X);
  EXPECT_EQ(a, b);
}

TEST(Word, ToggleCountKnownBits) {
  const Word a = Word::fromUint(8, 0b10101010);
  const Word b = Word::fromUint(8, 0b10100101);
  EXPECT_EQ(Word::toggleCount(a, b), 4);
  EXPECT_EQ(Word::toggleCount(a, a), 0);
}

TEST(Word, ToggleCountUnknownIsPessimistic) {
  Word a = Word::fromUint(4, 0b1111);
  Word b = Word::fromUint(4, 0b1111);
  b.setBit(2, Logic::X);
  EXPECT_EQ(Word::toggleCount(a, b), 1);
}

TEST(Word, ToggleCountWidthMismatchThrows) {
  EXPECT_THROW(Word::toggleCount(Word(3), Word(4)), std::invalid_argument);
}

TEST(Word, ConcatAndSlice) {
  const Word hi = Word::fromUint(4, 0xA);
  const Word lo = Word::fromUint(4, 0x5);
  const Word cat = Word::concat(hi, lo);
  EXPECT_EQ(cat.width(), 8);
  EXPECT_EQ(cat.toUint(), 0xA5u);
  EXPECT_EQ(cat.slice(0, 4).toUint(), 0x5u);
  EXPECT_EQ(cat.slice(4, 4).toUint(), 0xAu);
}

TEST(Word, SliceOutOfRangeThrows) {
  const Word w = Word::fromUint(8, 1);
  EXPECT_THROW(w.slice(5, 4), std::out_of_range);
  EXPECT_THROW(w.slice(-1, 2), std::out_of_range);
}

TEST(Word, WidthBoundsChecked) {
  EXPECT_THROW(Word(-1), std::invalid_argument);
  EXPECT_THROW(Word(65), std::invalid_argument);
  EXPECT_NO_THROW(Word(64));
}

TEST(Word, BitIndexBoundsChecked) {
  Word w(4);
  EXPECT_THROW(w.bit(4), std::out_of_range);
  EXPECT_THROW(w.setBit(-1, Logic::L0), std::out_of_range);
}

class WordUintRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WordUintRoundTrip, AllWidths) {
  const int width = GetParam();
  const std::uint64_t v = 0xDEADBEEFCAFEBABEULL;
  const Word w = Word::fromUint(width, v);
  const std::uint64_t mask =
      width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  EXPECT_EQ(w.toUint(), v & mask);
  EXPECT_EQ(Word::fromString(w.toString()), w);
}

INSTANTIATE_TEST_SUITE_P(Widths, WordUintRoundTrip,
                         ::testing::Values(1, 2, 7, 8, 15, 16, 31, 32, 33, 48,
                                           63, 64));

}  // namespace
}  // namespace vcad
