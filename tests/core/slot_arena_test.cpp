// The slot-indexed simulation-state arena: slot leasing and recycling,
// fail-loud exhaustion, O(1) reset() semantics, hierarchical state
// release, and — under the TSan lane — proof that many pooled schedulers
// with randomized interleavings never bleed state across slots.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/circuit.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "core/sim_controller.hpp"
#include "core/slot_registry.hpp"
#include "obs/metrics.hpp"
#include "gate/generators.hpp"
#include "gate/netlist_module.hpp"
#include "rtl/modules.hpp"

namespace vcad {
namespace {

struct MarkerState final : ModuleState {
  int marker = 0;
};

struct Rig {
  Circuit top{"top"};
  rtl::PrimaryOutput* out = nullptr;

  explicit Rig(int samples = 20) {
    const int w = 4;
    auto nl = std::make_shared<gate::Netlist>(gate::makeArrayMultiplier(w));
    auto& a = top.makeWord(w, "a");
    auto& b = top.makeWord(w, "b");
    auto& o = top.makeWord(2 * w, "o");
    top.make<rtl::RandomPrimaryInput>("ina", w, a, samples, 10, 0xAA);
    top.make<rtl::RandomPrimaryInput>("inb", w, b, samples, 10, 0xBB);
    top.make<gate::NetlistModule>(
        "mult", nl,
        std::vector<gate::NetlistModule::PortGroup>{{"a", &a, 0, w},
                                                    {"b", &b, w, w}},
        std::vector<gate::NetlistModule::PortGroup>{{"o", &o, 0, 2 * w}});
    out = &top.make<rtl::PrimaryOutput>("out", o);
  }
};

TEST(SlotArena, SlotsAreRecycledThroughTheRegistry) {
  std::uint32_t firstSlot;
  std::uint32_t firstGen;
  {
    Scheduler s;
    firstSlot = s.slot();
    firstGen = s.slotGeneration();
    EXPECT_EQ(s.id(), firstSlot);
    EXPECT_NE(firstSlot, 0u);  // slot 0 is reserved
    EXPECT_LT(firstSlot, SlotRegistry::kCapacity);
  }
  // The free list is LIFO: the next scheduler reuses the slot just
  // released, under a strictly newer generation.
  Scheduler s2;
  EXPECT_EQ(s2.slot(), firstSlot);
  EXPECT_GT(s2.slotGeneration(), firstGen);
}

TEST(SlotArena, ExhaustionFailsLoudlyAndRecovers) {
  std::vector<std::unique_ptr<Scheduler>> held;
  // Slot 0 is reserved, so exactly kCapacity - 1 schedulers can be live.
  for (std::uint32_t i = 0; i < SlotRegistry::kCapacity - 1; ++i) {
    held.push_back(std::make_unique<Scheduler>());
  }
  EXPECT_EQ(SlotRegistry::global().leased(), SlotRegistry::kCapacity - 1);
  EXPECT_THROW(Scheduler(), std::runtime_error);
  // Releasing any slot makes construction possible again.
  held.pop_back();
  EXPECT_NO_THROW(Scheduler());
  held.clear();
  EXPECT_EQ(SlotRegistry::global().leased(), 0u);
}

TEST(SlotArena, ExhaustionPastCapacityWithLiveSimsRecoversResidueFree) {
  // Exhaustion under load, not just with idle schedulers: the arena fills
  // with real simulations carrying real per-slot state, the loud-failure
  // path trips repeatedly past capacity for both raw Schedulers and
  // SimulationControllers, and after release every slot — including the
  // ones that actually ran — reads back residual-free.
  Rig rig(6);
  const std::uint64_t exhaustionsBefore =
      obs::Registry::global().snapshot().counterOr("slots.exhaustions");

  std::vector<std::unique_ptr<SimulationController>> sims;
  while (SlotRegistry::global().leased() < SlotRegistry::kCapacity - 1) {
    sims.push_back(std::make_unique<SimulationController>(rig.top));
  }
  ASSERT_EQ(SlotRegistry::global().leased(), SlotRegistry::kCapacity - 1);

  // Past 128 concurrent schedulers, every construction attempt fails loudly
  // — and keeps failing; nothing leaks a half-acquired slot.
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_THROW(Scheduler(), std::runtime_error);
    EXPECT_THROW(SimulationController{rig.top}, std::runtime_error);
    EXPECT_EQ(SlotRegistry::global().leased(), SlotRegistry::kCapacity - 1);
  }
  if constexpr (obs::kObsCompiledIn) {
    EXPECT_GE(obs::Registry::global().snapshot().counterOr("slots.exhaustions"),
              exhaustionsBefore + 6);
  }

  // Put real state into a few of the held slots before releasing anything.
  sims.front()->start();
  sims.back()->start();

  for (auto& sim : sims) {
    const std::uint32_t slot = sim->scheduler().slot();
    rig.top.clearSchedulerState(sim->scheduler().id());
    sim.reset();  // unique_ptr::reset — destroys the controller, frees the slot
    EXPECT_EQ(rig.top.residualStateCount(slot), 0u) << "slot " << slot;
  }
  sims.clear();
  EXPECT_EQ(SlotRegistry::global().leased(), 0u);

  // The recovered arena supports a full fresh run, and that run also leaves
  // nothing behind.
  SimulationController fresh(rig.top);
  fresh.start();
  const std::uint32_t freshSlot = fresh.scheduler().slot();
  SimContext ctx{fresh.scheduler(), nullptr};
  EXPECT_EQ(rig.out->sampleCount(ctx), 6u);
  rig.top.clearSchedulerState(fresh.scheduler().id());
  EXPECT_EQ(rig.top.residualStateCount(freshSlot), 0u);
}

TEST(SlotArena, RecycledSlotSeesNoneOfItsPredecessorsState) {
  Connector* conn;
  Circuit c("c");
  conn = &c.makeWord(8, "w");
  std::uint32_t slot;
  {
    Scheduler a;
    slot = a.slot();
    conn->setValue(a.slot(), a.slotGeneration(), Word::fromUint(8, 0x5A));
    EXPECT_EQ(conn->value(a.slot(), a.slotGeneration()).toUint(), 0x5Au);
  }
  // Same slot, new lease: the stale entry's generation no longer matches,
  // so the new run reads all-X without anyone having cleared anything.
  Scheduler b;
  ASSERT_EQ(b.slot(), slot);
  EXPECT_FALSE(conn->value(b.slot(), b.slotGeneration()).isFullyKnown());
  EXPECT_EQ(conn->value(b.slot(), b.slotGeneration()).toString(),
            Word::allX(8).toString());
}

TEST(SlotArena, ControllerResetIsACheapLogicalClear) {
  Rig rig;
  SimulationController sim(rig.top);
  sim.start();
  SimContext ctx{sim.scheduler(), nullptr};
  const auto golden = rig.out->history(ctx);
  ASSERT_EQ(golden.size(), 20u);
  const std::uint32_t slot = sim.scheduler().slot();
  const std::uint32_t genBefore = sim.scheduler().slotGeneration();
  ASSERT_GT(rig.top.residualStateCount(slot), 0u);

  // reset() renews the generation: same slot, all state logically gone,
  // and the rerun reproduces the first run exactly.
  sim.reset();
  EXPECT_EQ(sim.scheduler().slot(), slot);
  EXPECT_GT(sim.scheduler().slotGeneration(), genBefore);
  EXPECT_EQ(rig.top.residualStateCount(slot), 0u);
  EXPECT_EQ(sim.scheduler().resets(), 1u);

  sim.start();
  SimContext ctx2{sim.scheduler(), nullptr};
  const auto rerun = rig.out->history(ctx2);
  ASSERT_EQ(rerun.size(), golden.size());
  for (std::size_t i = 0; i < rerun.size(); ++i) {
    EXPECT_EQ(rerun[i].value, golden[i].value) << i;
  }
}

TEST(SlotArena, ClearSchedulerStateReleasesHierarchicalState) {
  // Nested circuit with its own connectors and modules, plus state planted
  // directly on the circuit modules themselves — the historical leak:
  // visitLeaves-based clearing skipped every non-leaf module.
  Circuit top("top");
  auto& sub = top.make<Circuit>("sub");
  auto& inner = sub.makeWord(4, "inner");
  sub.make<rtl::RandomPrimaryInput>("src", 4, inner, 5, 10, 0x11);
  auto& probe = sub.make<rtl::PrimaryOutput>("probe", inner);

  SimulationController sim(top);
  sim.start();
  const std::uint32_t slot = sim.scheduler().slot();
  SimContext ctx{sim.scheduler(), nullptr};
  ASSERT_EQ(probe.sampleCount(ctx), 5u);

  // Plant module-level state on both circuit nodes (not leaves).
  top.stateFor<MarkerState>(slot).marker = 1;
  sub.stateFor<MarkerState>(slot).marker = 2;
  ASSERT_TRUE(top.hasLiveStateFor(slot));
  ASSERT_TRUE(sub.hasLiveStateFor(slot));
  ASSERT_GT(top.residualStateCount(slot), 0u);

  top.clearSchedulerState(slot);
  EXPECT_FALSE(top.hasLiveStateFor(slot));
  EXPECT_FALSE(sub.hasLiveStateFor(slot));
  EXPECT_EQ(top.residualStateCount(slot), 0u);
}

TEST(SlotArena, PeakAndLeaseMetricsTrackConcurrency) {
  SlotRegistry& reg = SlotRegistry::global();
  reg.restartPeakTracking();
  const std::uint64_t leasesBefore = reg.totalLeases();
  {
    Scheduler a;
    Scheduler b;
    Scheduler c;
    EXPECT_EQ(reg.peakLeased(), 3u);
  }
  Scheduler d;
  EXPECT_EQ(reg.peakLeased(), 3u);  // high-water mark survives releases
  EXPECT_EQ(reg.totalLeases() - leasesBefore, 4u);
}

TEST(SlotArena, ConcurrentPooledSchedulersNeverBleedAcrossSlots) {
  // The TSan-lane stress: N pooled controllers over the same design, each
  // worker thread running several reset-and-reuse rounds with randomized
  // interleavings. Every round must reproduce the serial golden stream —
  // any cross-slot bleed (or data race, under TSan) fails the lane.
  constexpr std::size_t kWorkers = 10;  // >= 8 per the acceptance criteria
  constexpr int kRounds = 3;
  Rig rig(12);

  SimulationController goldSim(rig.top);
  goldSim.start();
  SimContext goldCtx{goldSim.scheduler(), nullptr};
  std::vector<Word> golden;
  for (const auto& s : rig.out->history(goldCtx)) golden.push_back(s.value);
  ASSERT_EQ(golden.size(), 12u);

  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(0x517A + w);
      SimulationController sim(rig.top);
      for (int round = 0; round < kRounds; ++round) {
        if (round > 0) sim.reset();
        // Randomized interleaving: yield a random number of times so the
        // rounds of different workers overlap in ever-different ways.
        for (std::uint64_t y = rng.next() % 8; y-- > 0;) {
          std::this_thread::yield();
        }
        sim.start();
        SimContext ctx{sim.scheduler(), nullptr};
        const auto& h = rig.out->history(ctx);
        if (h.size() != golden.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < h.size(); ++i) {
          if (h[i].value != golden[i]) mismatches.fetch_add(1);
        }
      }
      rig.top.clearSchedulerState(sim.scheduler().id());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(SlotArena, ConcurrentRawSlotWritesStayIsolated) {
  // Direct per-slot isolation on one shared connector: every thread spins
  // values through its own slot and must always read back exactly what it
  // wrote, regardless of interleaving.
  Circuit c("c");
  Connector& conn = c.makeWord(16, "shared");
  constexpr std::size_t kWorkers = 8;
  constexpr int kIters = 500;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      Scheduler s;
      Rng rng(0xBEEF + w);
      for (int i = 0; i < kIters; ++i) {
        const Word v = Word::fromUint(16, (w << 12) | (rng.next() & 0xFFF));
        conn.setValue(s.slot(), s.slotGeneration(), v);
        if (rng.next() % 4 == 0) std::this_thread::yield();
        if (conn.value(s.slot(), s.slotGeneration()) != v) {
          mismatches.fetch_add(1);
        }
      }
      conn.clearValue(s.slot());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace vcad
