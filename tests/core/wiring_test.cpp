#include "core/wiring.hpp"

#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/sim_controller.hpp"

namespace vcad {
namespace {

TEST(Wiring, BufferForwardsValue) {
  Circuit top("top");
  auto& in = top.makeWord(8);
  auto& out = top.makeWord(8);
  top.make<Buffer>("buf", in, out);
  SimulationController sim(top);
  sim.inject(in, Word::fromUint(8, 0xAB));
  sim.start();
  EXPECT_EQ(out.value(sim.scheduler().id()).toUint(), 0xABu);
}

TEST(Wiring, BufferWidthMismatchRejected) {
  Circuit top("top");
  auto& in = top.makeWord(8);
  auto& out = top.makeWord(4);
  EXPECT_THROW(top.make<Buffer>("buf", in, out), std::invalid_argument);
}

TEST(Wiring, FanoutDuplicatesToAllBranches) {
  Circuit top("top");
  auto& in = top.makeWord(4);
  auto& b0 = top.makeWord(4);
  auto& b1 = top.makeWord(4);
  auto& b2 = top.makeWord(4);
  top.make<Fanout>("fan", in,
                   std::vector<Fanout::Branch>{{&b0, 0}, {&b1, 0}, {&b2, 0}});
  SimulationController sim(top);
  sim.inject(in, Word::fromUint(4, 0x9));
  sim.start();
  const auto id = sim.scheduler().id();
  EXPECT_EQ(b0.value(id).toUint(), 0x9u);
  EXPECT_EQ(b1.value(id).toUint(), 0x9u);
  EXPECT_EQ(b2.value(id).toUint(), 0x9u);
}

TEST(Wiring, FanoutPerBranchDelays) {
  // Custom fanout modules can provide different delays toward different
  // target connectors (the flexibility the paper calls out).
  Circuit top("top");
  auto& in = top.makeBit();
  auto& fastBranch = top.makeBit();
  auto& slowBranch = top.makeBit();
  top.make<Fanout>("fan", in,
                   std::vector<Fanout::Branch>{{&fastBranch, 1},
                                               {&slowBranch, 10}});
  SimulationController sim(top);
  sim.inject(in, Word::fromLogic(Logic::L1));
  sim.initialize();
  sim.scheduler().runUntil(5);
  const auto id = sim.scheduler().id();
  EXPECT_EQ(fastBranch.value(id).scalar(), Logic::L1);
  EXPECT_EQ(slowBranch.value(id).scalar(), Logic::X);  // not yet arrived
  sim.scheduler().run();
  EXPECT_EQ(slowBranch.value(id).scalar(), Logic::L1);
}

TEST(Wiring, FanoutRequiresBranches) {
  Circuit top("top");
  auto& in = top.makeBit();
  EXPECT_THROW(top.make<Fanout>("fan", in, std::vector<Fanout::Branch>{}),
               std::invalid_argument);
}

TEST(Wiring, FanoutBranchWidthMismatchRejected) {
  Circuit top("top");
  auto& in = top.makeWord(4);
  auto& bad = top.makeWord(8);
  EXPECT_THROW(top.make<Fanout>("fan", in,
                                std::vector<Fanout::Branch>{{&bad, 0}}),
               std::invalid_argument);
}

TEST(Wiring, DelayShiftsDeliveryTime) {
  Circuit top("top");
  auto& in = top.makeWord(8);
  auto& out = top.makeWord(8);
  top.make<Delay>("dly", in, out, 7);
  SimulationController sim(top);
  sim.inject(in, Word::fromUint(8, 1));
  sim.start();
  EXPECT_EQ(sim.scheduler().now(), 7u);
  EXPECT_EQ(out.value(sim.scheduler().id()).toUint(), 1u);
}

TEST(Wiring, ChainedDelaysAccumulate) {
  Circuit top("top");
  auto& a = top.makeWord(8);
  auto& b = top.makeWord(8);
  auto& c = top.makeWord(8);
  top.make<Delay>("d1", a, b, 3);
  top.make<Delay>("d2", b, c, 4);
  SimulationController sim(top);
  sim.inject(a, Word::fromUint(8, 5));
  sim.start();
  EXPECT_EQ(sim.scheduler().now(), 7u);
  EXPECT_EQ(c.value(sim.scheduler().id()).toUint(), 5u);
}

}  // namespace
}  // namespace vcad
