#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/connector.hpp"
#include "core/module.hpp"

namespace vcad {
namespace {

// Records every received value with its delivery time.
class Probe : public Module {
 public:
  Probe(std::string name, Connector& in) : Module(std::move(name)) {
    in_ = &addInput("in", in);
  }

  void processInputEvent(const SignalToken& token, SimContext& ctx) override {
    received.emplace_back(ctx.scheduler.now(), token.value());
  }

  std::vector<std::pair<SimTime, Word>> received;

 private:
  Port* in_;
};

// Emits a fixed value after a delay when initialized.
class Pulser : public Module {
 public:
  Pulser(std::string name, Connector& out, Word value, SimTime delay)
      : Module(std::move(name)), value_(std::move(value)), delay_(delay) {
    out_ = &addOutput("out", out);
  }

  void initialize(SimContext& ctx) override { selfSchedule(ctx, delay_); }

  void processSelfEvent(const SelfToken&, SimContext& ctx) override {
    emit(ctx, *out_, value_);
  }

 private:
  Port* out_;
  Word value_;
  SimTime delay_;
};

TEST(Scheduler, UniqueIds) {
  Scheduler a, b;
  EXPECT_NE(a.id(), b.id());
}

TEST(Scheduler, SelfScheduledPulserDrivesProbe) {
  WordConnector c(8);
  Pulser pulser("pulse", c, Word::fromUint(8, 7), 3);
  Probe probe("p", c);
  Scheduler s;
  SimContext ctx{s, nullptr};
  pulser.initialize(ctx);
  s.run();
  ASSERT_EQ(probe.received.size(), 1u);
  EXPECT_EQ(probe.received[0].first, 3u);
  EXPECT_EQ(probe.received[0].second.toUint(), 7u);
}

TEST(Scheduler, DeliversInTimeThenFifoOrder) {
  WordConnector c1(8), c2(8);
  Probe p1("p1", c1);
  Probe p2("p2", c2);
  Scheduler s;
  // Schedule out of order: t=5 first, then t=2, then another t=5.
  s.schedule(std::make_unique<SignalToken>(*c1.endpoints()[0],
                                           Word::fromUint(8, 50)),
             5);
  s.schedule(std::make_unique<SignalToken>(*c2.endpoints()[0],
                                           Word::fromUint(8, 20)),
             2);
  s.schedule(std::make_unique<SignalToken>(*c1.endpoints()[0],
                                           Word::fromUint(8, 51)),
             5);
  s.run();
  ASSERT_EQ(p2.received.size(), 1u);
  EXPECT_EQ(p2.received[0].first, 2u);
  ASSERT_EQ(p1.received.size(), 2u);
  EXPECT_EQ(p1.received[0].second.toUint(), 50u);  // FIFO within t=5
  EXPECT_EQ(p1.received[1].second.toUint(), 51u);
  EXPECT_EQ(s.now(), 5u);
  EXPECT_EQ(s.dispatched(), 3u);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  WordConnector c(8);
  Probe p("p", c);
  Scheduler s;
  Port& in = *c.endpoints()[0];
  s.schedule(std::make_unique<SignalToken>(in, Word::fromUint(8, 1)), 1);
  s.schedule(std::make_unique<SignalToken>(in, Word::fromUint(8, 2)), 10);
  s.runUntil(5);
  EXPECT_EQ(p.received.size(), 1u);
  EXPECT_FALSE(s.empty());
  s.run();
  EXPECT_EQ(p.received.size(), 2u);
}

TEST(Scheduler, SignalDeliveryUpdatesConnectorValue) {
  WordConnector c(8);
  Probe p("p", c);
  Scheduler s;
  s.schedule(
      std::make_unique<SignalToken>(*c.endpoints()[0], Word::fromUint(8, 42)));
  s.run();
  EXPECT_EQ(c.value(s.id()).toUint(), 42u);
}

TEST(Scheduler, EventLimitGuard) {
  // A module that reschedules itself forever trips the runaway guard.
  class Oscillator : public Module {
   public:
    using Module::Module;
    void initialize(SimContext& ctx) override { selfSchedule(ctx, 1); }
    void processSelfEvent(const SelfToken&, SimContext& ctx) override {
      selfSchedule(ctx, 1);
    }
  };
  Oscillator osc("osc");
  Scheduler s;
  SimContext ctx{s, nullptr};
  osc.initialize(ctx);
  EXPECT_THROW(s.run(1000), std::runtime_error);
}

TEST(Scheduler, EventLimitIsExact) {
  // Regression for an off-by-one: the old guard fired only after
  // maxEvents + 1 events had already been dispatched. The limit must be
  // exact — the (maxEvents+1)-th event throws BEFORE it is delivered.
  class Oscillator : public Module {
   public:
    using Module::Module;
    void initialize(SimContext& ctx) override { selfSchedule(ctx, 1); }
    void processSelfEvent(const SelfToken&, SimContext& ctx) override {
      selfSchedule(ctx, 1);
    }
  };
  Oscillator osc("osc");
  Scheduler s;
  SimContext ctx{s, nullptr};
  osc.initialize(ctx);
  EXPECT_THROW(s.run(5), std::runtime_error);
  EXPECT_EQ(s.dispatched(), 5u);

  Scheduler s2;
  SimContext ctx2{s2, nullptr};
  osc.initialize(ctx2);
  EXPECT_THROW(s2.runUntil(1000, 5), std::runtime_error);
  EXPECT_EQ(s2.dispatched(), 5u);
}

TEST(Scheduler, EventLimitAllowsExactlyMaxEvents) {
  // A finite run of exactly maxEvents events must complete without
  // tripping the guard.
  WordConnector c(8);
  Probe p("p", c);
  Scheduler s;
  for (int i = 0; i < 3; ++i) {
    s.schedule(std::make_unique<SignalToken>(*c.endpoints()[0],
                                             Word::fromUint(8, 1)),
               static_cast<SimTime>(i));
  }
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(p.received.size(), 3u);

  Scheduler s2;
  for (int i = 0; i < 3; ++i) {
    s2.schedule(std::make_unique<SignalToken>(*c.endpoints()[0],
                                              Word::fromUint(8, 1)),
                static_cast<SimTime>(i));
  }
  EXPECT_THROW(s2.run(2), std::runtime_error);
  EXPECT_EQ(s2.dispatched(), 2u);
}

TEST(Scheduler, NullTokenRejected) {
  Scheduler s;
  EXPECT_THROW(s.schedule(nullptr), std::invalid_argument);
}

TEST(Scheduler, OutputOverrideReplacesEventHandling) {
  // in -> NOT-like module -> out; override forces the output to 1 no matter
  // what the module would compute.
  class Inverter : public Module {
   public:
    Inverter(std::string name, Connector& in, Connector& out)
        : Module(std::move(name)) {
      in_ = &addInput("in", in);
      out_ = &addOutput("out", out);
    }
    void processInputEvent(const SignalToken& t, SimContext& ctx) override {
      Word w(1);
      w.setBit(0, logicNot(t.value().bit(0)));
      emit(ctx, *out_, w);
    }
    Port* in_;
    Port* out_;
  };

  BitConnector cin, cout;
  Inverter inv("inv", cin, cout);
  Probe probe("probe", cout);
  Scheduler s;
  s.setOutputOverride(inv, {{inv.out_, Word::fromLogic(Logic::L1)}});
  s.schedule(
      std::make_unique<SignalToken>(*inv.in_, Word::fromLogic(Logic::L1)));
  s.run();
  ASSERT_EQ(probe.received.size(), 1u);
  // Normal inversion would give 0; the override forced 1.
  EXPECT_EQ(probe.received[0].second.scalar(), Logic::L1);

  s.clearOutputOverride(inv);
  s.schedule(
      std::make_unique<SignalToken>(*inv.in_, Word::fromLogic(Logic::L1)));
  s.run();
  ASSERT_EQ(probe.received.size(), 2u);
  EXPECT_EQ(probe.received[1].second.scalar(), Logic::L0);
}

TEST(Scheduler, OverrideIsPerScheduler) {
  class Forward : public Module {
   public:
    Forward(std::string name, Connector& in, Connector& out)
        : Module(std::move(name)) {
      in_ = &addInput("in", in);
      out_ = &addOutput("out", out);
    }
    void processInputEvent(const SignalToken& t, SimContext& ctx) override {
      emit(ctx, *out_, t.value());
    }
    Port* in_;
    Port* out_;
  };
  BitConnector cin, cout;
  Forward f("f", cin, cout);
  Probe probe("probe", cout);
  Scheduler withOverride, plain;
  withOverride.setOutputOverride(f, {{f.out_, Word::fromLogic(Logic::L1)}});
  // Same stimulus on both schedulers.
  withOverride.schedule(
      std::make_unique<SignalToken>(*f.in_, Word::fromLogic(Logic::L0)));
  plain.schedule(
      std::make_unique<SignalToken>(*f.in_, Word::fromLogic(Logic::L0)));
  withOverride.run();
  plain.run();
  // The override only affected its own scheduler's view of the net.
  EXPECT_EQ(cout.value(withOverride.id()).scalar(), Logic::L1);
  EXPECT_EQ(cout.value(plain.id()).scalar(), Logic::L0);
}

TEST(Scheduler, PendingTokensFreedOnDestruction) {
  // No leak / crash when a scheduler dies with queued tokens (ASAN-clean).
  WordConnector c(8);
  Probe p("p", c);
  {
    Scheduler s;
    s.schedule(std::make_unique<SignalToken>(*c.endpoints()[0],
                                             Word::fromUint(8, 1)),
               100);
  }
  EXPECT_TRUE(p.received.empty());
}

}  // namespace
}  // namespace vcad
