#include "core/setup.hpp"

#include <gtest/gtest.h>

#include "core/circuit.hpp"
#include "core/module.hpp"

namespace vcad {
namespace {

class Dummy : public Module {
 public:
  using Module::Module;
};

class FixedEstimator : public Estimator {
 public:
  FixedEstimator(std::string name, double err, double cost, double cpu,
                 bool remote = false)
      : Estimator(
            EstimatorInfo{std::move(name), err, cost, cpu, remote, false}) {}
  std::unique_ptr<ParamValue> estimate(const EstimationContext&) override {
    return std::make_unique<ScalarValue>(1.0, "u");
  }
};

std::shared_ptr<Estimator> est(std::string name, double err, double cost,
                               double cpu, bool remote = false) {
  return std::make_shared<FixedEstimator>(std::move(name), err, cost, cpu,
                                          remote);
}

// The three Table-1 estimators of the paper: constant (25% err, free),
// linear regression (20% err, free), gate-level toggle count (10% err,
// 0.1 c/pattern, remote, slow).
void addTable1Estimators(Module& m) {
  m.addEstimator(ParamKind::AvgPower, est("constant", 25, 0.0, 0.0));
  m.addEstimator(ParamKind::AvgPower, est("linear-regression", 20, 0.0, 1e-6));
  m.addEstimator(ParamKind::AvgPower,
                 est("gate-level-toggle", 10, 0.1, 1e-4, true));
}

TEST(Setup, UniqueIds) {
  SetupController a, b;
  EXPECT_NE(a.id(), b.id());
}

TEST(Setup, BestAccuracyPicksGateLevel) {
  Dummy m("mult");
  addTable1Estimators(m);
  auto sel = SetupController::select(m, ParamKind::AvgPower,
                                     {Criterion::BestAccuracy});
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->name(), "gate-level-toggle");
}

TEST(Setup, LowestCostPicksBestFreeEstimator) {
  Dummy m("mult");
  addTable1Estimators(m);
  auto sel = SetupController::select(m, ParamKind::AvgPower,
                                     {Criterion::LowestCost});
  ASSERT_NE(sel, nullptr);
  // Among the two free estimators, the more accurate one wins.
  EXPECT_EQ(sel->name(), "linear-regression");
}

TEST(Setup, FastestCpuPicksConstant) {
  Dummy m("mult");
  addTable1Estimators(m);
  auto sel = SetupController::select(m, ParamKind::AvgPower,
                                     {Criterion::FastestCpu});
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->name(), "constant");
}

TEST(Setup, ByNameSelection) {
  Dummy m("mult");
  addTable1Estimators(m);
  EstimatorChoice byName{Criterion::ByName};
  byName.name = "linear-regression";
  auto sel = SetupController::select(m, ParamKind::AvgPower, byName);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->name(), "linear-regression");
}

TEST(Setup, CostConstraintFiltersRemote) {
  Dummy m("mult");
  addTable1Estimators(m);
  EstimatorChoice c{Criterion::BestAccuracy};
  c.maxCostCents = 0.0;  // free estimators only
  auto sel = SetupController::select(m, ParamKind::AvgPower, c);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->name(), "linear-regression");
}

TEST(Setup, RemoteForbiddenFallsBackToLocal) {
  Dummy m("mult");
  addTable1Estimators(m);
  EstimatorChoice c{Criterion::BestAccuracy};
  c.allowRemote = false;
  auto sel = SetupController::select(m, ParamKind::AvgPower, c);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->name(), "linear-regression");
}

TEST(Setup, UnsatisfiableSelectionReturnsNull) {
  Dummy m("mult");
  addTable1Estimators(m);
  EstimatorChoice c{Criterion::BestAccuracy};
  c.maxErrorPct = 5.0;  // nothing is that accurate
  EXPECT_EQ(SetupController::select(m, ParamKind::AvgPower, c), nullptr);
}

TEST(Setup, ApplyBindsHierarchically) {
  Circuit top("top");
  auto& a = top.make<Dummy>("a");
  auto& sub = top.make<Circuit>("sub");
  auto& b = sub.make<Dummy>("b");
  addTable1Estimators(a);
  addTable1Estimators(b);

  SetupController setup;
  setup.set(ParamKind::AvgPower, {Criterion::BestAccuracy});
  EXPECT_EQ(setup.apply(top), 0u);
  EXPECT_EQ(a.boundEstimator(setup.id(), ParamKind::AvgPower)->name(),
            "gate-level-toggle");
  EXPECT_EQ(b.boundEstimator(setup.id(), ParamKind::AvgPower)->name(),
            "gate-level-toggle");
}

TEST(Setup, ApplyFallsBackToNullWithWarning) {
  LogSink log;
  Circuit top("top");
  auto& a = top.make<Dummy>("a");  // has no estimators at all
  SetupController setup(&log);
  setup.set(ParamKind::Area, {Criterion::BestAccuracy});
  EXPECT_EQ(setup.apply(top), 1u);
  EXPECT_EQ(a.boundEstimator(setup.id(), ParamKind::Area)->name(), "null");
  EXPECT_EQ(log.count(Severity::Warning), 1u);
}

TEST(Setup, PartialEstimationOnlyBindsRequestedParams) {
  Circuit top("top");
  auto& a = top.make<Dummy>("a");
  addTable1Estimators(a);
  SetupController setup;
  setup.set(ParamKind::AvgPower, {Criterion::BestAccuracy});
  setup.apply(top);
  // Delay was never requested: stays null.
  EXPECT_EQ(a.boundEstimator(setup.id(), ParamKind::Delay)->name(), "null");
}

TEST(Setup, TwoSetupsCoexistOnSameDesign) {
  Circuit top("top");
  auto& a = top.make<Dummy>("a");
  addTable1Estimators(a);
  SetupController accurate, cheap;
  accurate.set(ParamKind::AvgPower, {Criterion::BestAccuracy});
  EstimatorChoice c{Criterion::FastestCpu};
  cheap.set(ParamKind::AvgPower, c);
  accurate.apply(top);
  cheap.apply(top);
  EXPECT_EQ(a.boundEstimator(accurate.id(), ParamKind::AvgPower)->name(),
            "gate-level-toggle");
  EXPECT_EQ(a.boundEstimator(cheap.id(), ParamKind::AvgPower)->name(),
            "constant");
}

}  // namespace
}  // namespace vcad
