#include "core/circuit.hpp"

#include <gtest/gtest.h>

#include "core/sim_controller.hpp"
#include "core/wiring.hpp"

namespace vcad {
namespace {

class Dummy : public Module {
 public:
  using Module::Module;
};

TEST(Circuit, MakeOwnsModulesAndConnectors) {
  Circuit c("top");
  auto& m = c.make<Dummy>("m");
  auto& w = c.makeWord(8, "w");
  EXPECT_EQ(c.submodules().size(), 1u);
  EXPECT_EQ(c.connectors().size(), 1u);
  EXPECT_EQ(&m, c.findChild("m"));
  EXPECT_EQ(w.width(), 8);
}

TEST(Circuit, FindChildMissingReturnsNull) {
  Circuit c("top");
  EXPECT_EQ(c.findChild("nope"), nullptr);
}

TEST(Circuit, AdoptNullRejected) {
  Circuit c("top");
  EXPECT_THROW(c.adopt(nullptr), std::invalid_argument);
}

TEST(Circuit, VisitLeavesRecursesHierarchy) {
  Circuit top("top");
  top.make<Dummy>("a");
  auto& mid = top.make<Circuit>("mid");
  mid.make<Dummy>("b");
  auto& leafCircuit = mid.make<Circuit>("deep");
  leafCircuit.make<Dummy>("c");
  std::vector<std::string> names;
  top.visitLeaves([&](Module& m) { names.push_back(m.name()); });
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(top.leafCount(), 3u);
}

TEST(Circuit, EmptyCircuitHasNoLeaves) {
  Circuit c("top");
  EXPECT_EQ(c.leafCount(), 0u);
}

TEST(Circuit, HierarchyBridgedWithBuffers) {
  // Outer connector -> buffer bridge inside a subcircuit -> inner consumer:
  // an event injected on the outer connector reaches the inner one.
  Circuit top("top");
  auto& outer = top.makeWord(8, "outer");
  auto& sub = top.make<Circuit>("sub");
  auto& inner = sub.makeWord(8, "inner");
  sub.make<Buffer>("bridge", outer, inner);
  // Terminate the inner connector with another buffer into a tap.
  auto& tap = sub.makeWord(8, "tap");
  sub.make<Buffer>("sink", inner, tap);

  SimulationController sim(top);
  sim.inject(outer, Word::fromUint(8, 0x42));
  sim.start();
  EXPECT_EQ(tap.value(sim.scheduler().id()).toUint(), 0x42u);
}

}  // namespace
}  // namespace vcad
